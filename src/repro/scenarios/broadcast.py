"""Broadcast channels and the variants of common knowledge they attain (Section 11).

Two channel types are modelled:

* A *synchronous broadcast channel* with spread ``epsilon``: every message sent is
  received by every other processor within ``L .. L + epsilon`` time units.  When a
  processor receives the broadcast, ``sent(m)`` is epsilon-common knowledge
  (``C^eps``), but not common knowledge.
* An *asynchronous reliable broadcast channel*: every message is eventually received,
  but delivery can take arbitrarily long.  ``sent(m)`` becomes eventual common
  knowledge (``C^<>``) but, by Theorem 11, never epsilon-common knowledge for any
  fixed epsilon (when the uncertainty exceeds epsilon).

These systems drive experiment E7 together with the "OK" protocol of
:mod:`repro.scenarios.ok_protocol`.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.errors import ScenarioError
from repro.experiments.registry import (
    BuiltScenario,
    Parameter,
    ScenarioSignature,
    register_scenario,
)
from repro.logic.syntax import CDiamond, CEps, Common, EDiamond, Everyone, Formula, Prop
from repro.simulation.network import Asynchronous, BoundedUncertain
from repro.simulation.protocol import Action, Protocol
from repro.simulation.simulator import simulate
from repro.systems.clocks import perfect_clock
from repro.systems.runs import LocalHistory, Run
from repro.systems.system import System

__all__ = [
    "SENDER",
    "RECEIVERS",
    "SENT",
    "build_synchronous_broadcast_system",
    "build_asynchronous_broadcast_system",
    "eps_common_knowledge",
    "eventual_common_knowledge",
]

SENDER = "p1"
RECEIVERS = ("p2", "p3")
SENT = Prop("sent_m")


class _BroadcastOnce(Protocol):
    """The sender broadcasts one message to every other processor at time 0.

    Whether the sender broadcasts at all is part of its initial state ("send" or
    "quiet"); without that uncertainty ``sent(m)`` would be valid in the system and
    every knowledge state about it would hold trivially.
    """

    name = "broadcast-once"

    def step(self, processor: str, history: LocalHistory, time: int) -> Action:
        if processor != SENDER or history.sent_messages() or time != 0:
            return Action.nothing()
        if history.initial_state != "send":
            return Action.nothing()
        action = Action.nothing()
        for receiver in RECEIVERS:
            action = action.also_send(receiver, "m")
        return action


def _sent_fact(run: Run) -> Mapping[int, frozenset]:
    send_time: Optional[int] = None
    for time in run.times():
        if any(type(e).__name__ == "SendEvent" for e in run.events_at(SENDER, time)):
            send_time = time
            break
    if send_time is None:
        return {}
    return {t: frozenset({SENT.name}) for t in range(send_time, run.duration + 1)}


def build_synchronous_broadcast_system(
    latency: int, spread: int, horizon: Optional[int] = None
) -> System:
    """A broadcast delivered to every receiver within ``latency .. latency + spread``
    time units; everyone has a synchronised clock."""
    if latency < 0 or spread < 0:
        raise ScenarioError("latency and spread must be non-negative")
    duration = horizon if horizon is not None else latency + spread + 2
    processors = (SENDER,) + RECEIVERS
    clock = perfect_clock(duration)
    return simulate(
        _BroadcastOnce(),
        processors,
        duration=duration,
        delivery=BoundedUncertain(latency, latency + spread),
        initial_states={SENDER: ("send", "quiet")},
        clocks={p: (clock,) for p in processors},
        fact_rules=[_sent_fact],
        system_name=f"sync-broadcast-L{latency}-eps{spread}",
    )


def build_asynchronous_broadcast_system(horizon: int) -> System:
    """A reliable but asynchronous broadcast: delivery at any time up to the horizon,
    or still in flight when the run ends."""
    if horizon < 1:
        raise ScenarioError("horizon must be at least 1")
    processors = (SENDER,) + RECEIVERS
    return simulate(
        _BroadcastOnce(),
        processors,
        duration=horizon,
        delivery=Asynchronous(min_delay=1),
        initial_states={SENDER: ("send", "quiet")},
        fact_rules=[_sent_fact],
        system_name=f"async-broadcast-h{horizon}",
    )


# -- registry entry ----------------------------------------------------------

def _registry_formulas(params):
    """Default formula set: which variant of common knowledge the channel attains."""
    group = (SENDER,) + RECEIVERS
    eps = params["spread"]
    return {
        "sent": SENT,
        "E sent": Everyone(group, SENT),
        f"C^eps({eps}) sent": eps_common_knowledge(eps),
        "E^<> sent": EDiamond(group, SENT),
        "C^<> sent": eventual_common_knowledge(),
        "C sent": Common(group, SENT),
    }


def _registry_signature(params) -> ScenarioSignature:
    """Static signature: sender + receivers on perfect clocks, variant horizon."""
    if params["variant"] == "sync":
        horizon = params["latency"] + params["spread"] + 2
    else:
        horizon = params["horizon"]
    return ScenarioSignature(agents=(SENDER,) + RECEIVERS, horizon=horizon)


@register_scenario(
    name="broadcast",
    summary="synchronous vs asynchronous broadcast channels (system of runs)",
    section="Section 11",
    parameters=(
        Parameter(
            "variant",
            str,
            default="sync",
            choices=("sync", "async"),
            description="sync: delivery within latency..latency+spread; async: eventually",
        ),
        Parameter("latency", int, default=1, minimum=0, description="minimum delivery latency (sync variant)"),
        Parameter("spread", int, default=1, minimum=0, description="the epsilon of delivery uncertainty (sync variant)"),
        Parameter("horizon", int, default=3, minimum=1, description="run length (async variant; sync computes its own)"),
    ),
    formulas=_registry_formulas,
    signature=_registry_signature,
    details=(
        "The paper: the synchronous channel attains C^eps sent(m) (eps = spread) "
        "at the points of receipt but not plain C there (C sent(m) only holds at "
        "late points, once latency+spread has passed on every clock and the "
        "uncertainty is resolved); the asynchronous channel attains eventual "
        "common knowledge and, by Theorem 11, never C^eps.  Finite-horizon "
        "caveat: the C^<> fixed point needs the delivery guarantee to be visible "
        "beyond the horizon, so in this truncated reproduction C^<> sent "
        "evaluates empty on the async variant (E^<> sent is the observable "
        "approximation; see tests/test_scenarios.py)."
    ),
)
def build_broadcast_scenario(
    variant: str, latency: int, spread: int, horizon: int
) -> BuiltScenario:
    """Registry builder: one of the two broadcast channel types."""
    if variant == "sync":
        system = build_synchronous_broadcast_system(latency, spread)
    else:
        system = build_asynchronous_broadcast_system(horizon)
    return BuiltScenario(
        model=system,
        note="no focus point: the channel guarantees are validity claims",
    )


def eps_common_knowledge(eps: int) -> Formula:
    """``C^eps sent(m)`` among all processors of the broadcast system."""
    return CEps((SENDER,) + RECEIVERS, SENT, eps)


def eventual_common_knowledge() -> Formula:
    """``C^<> sent(m)`` among all processors of the broadcast system."""
    return CDiamond((SENDER,) + RECEIVERS, SENT)
