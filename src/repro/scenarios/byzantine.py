"""A byzantine-style faulty sender, expressed purely in the scenario DSL.

A general ``gen`` broadcasts a vote bit to two receivers.  In some runs the
general is *faulty* ("byzantine" in the traditional sense restricted to
equivocation): it tells ``r0`` the vote is 0 and ``r1`` the vote is 1.  The
receivers echo whatever they heard to each other, so in faulty runs each
receiver eventually holds a vote and a contradicting echo — the classical
detection pattern — while in honest runs vote and echo always agree.

The faulty behaviour is not a separate protocol: the general's initial state
(``"zero"``, ``"one"`` or ``"byz"``) selects it, so the system of runs contains
honest and faulty executions side by side and knowledge formulas can ask when a
receiver *knows* the general is faulty.  Because the receivers' echo channel is
reliable, detection does not stop at private knowledge: once both echoes land,
the faulty run's histories are unique and ``faulty`` becomes common knowledge
among the receivers — the reliable-channel escape hatch that the unreliable
coordinated-attack setting famously lacks.  An adversarial drop schedule
(``drop_first``) closes that hatch.

The recipe also exercises the DSL's ``adversary`` hook: ``drop_first`` composes
an :class:`~repro.simulation.network.AdversarialDrops` schedule over the
reliable channel that silently discards the first ``k`` messages sent in the
run (message uids are the global send order), so sweeps can watch detection —
and the knowledge it creates — disappear as the adversary grows stronger.
"""

from __future__ import annotations

from typing import Dict, Mapping

from repro.experiments.registry import Parameter
from repro.logic.syntax import Common, Eventually, Everyone, Knows, Prop
from repro.scenarios.dsl import ScenarioRecipe
from repro.simulation.network import ReliableSynchronous
from repro.simulation.protocol import Action, Protocol
from repro.systems.runs import LocalHistory, Run

__all__ = ["GENERAL", "RECEIVERS", "EquivocatingGeneralProtocol", "BYZANTINE"]

GENERAL = "gen"
RECEIVERS = ("r0", "r1")


class EquivocatingGeneralProtocol(Protocol):
    """Broadcast a vote — honestly or equivocating — then let receivers echo.

    The general's initial state picks its behaviour: ``"zero"``/``"one"`` send
    that bit to both receivers, ``"byz"`` sends 0 to ``r0`` and 1 to ``r1``.
    Each receiver echoes the first vote it hears to the other receiver, once.
    """

    name = "equivocating-general"

    def step(self, processor: str, history: LocalHistory, time: int) -> Action:
        """General: broadcast once at wake-up.  Receivers: echo the vote once."""
        if not history.awake:
            return Action.nothing()
        if processor == GENERAL:
            if history.sent_messages():
                return Action.nothing()
            state = history.initial_state
            if state == "byz":
                votes = {RECEIVERS[0]: 0, RECEIVERS[1]: 1}
            else:
                bit = 1 if state == "one" else 0
                votes = {receiver: bit for receiver in RECEIVERS}
            action = Action.nothing()
            for receiver in RECEIVERS:
                action = action.also_send(receiver, ("vote", votes[receiver]))
            return action
        if history.sent_messages():
            return Action.nothing()
        votes = [
            message.content[1]
            for message in history.received_messages()
            if message.content[0] == "vote"
        ]
        if votes:
            other = RECEIVERS[1] if processor == RECEIVERS[0] else RECEIVERS[0]
            return Action.send(other, ("echo", votes[0]))
        return Action.nothing()


def _byzantine_facts(run: Run) -> Mapping[int, frozenset]:
    """``faulty`` in equivocation runs; ``detect_r`` once ``r`` sees a mismatch."""
    facts: Dict[int, set] = {time: set() for time in run.times()}
    if run.initial_state(GENERAL) == "byz":
        for time in run.times():
            facts[time].add("faulty")
    for receiver in RECEIVERS:
        vote = None
        echo = None
        for time in run.times():
            for event in run.events_at(receiver, time):
                if type(event).__name__ != "ReceiveEvent":
                    continue
                kind, bit = event.message.content
                if kind == "vote" and vote is None:
                    vote = bit
                elif kind == "echo" and echo is None:
                    echo = bit
            if vote is not None and echo is not None and vote != echo:
                for later in range(time, run.duration + 1):
                    facts[later].add(f"detect_{receiver}")
                break
    return {time: frozenset(names) for time, names in facts.items() if names}


def _formulas(params: Mapping[str, object]) -> Dict[str, object]:
    """The suite: does detection turn private knowledge of faultiness on?"""
    faulty = Prop("faulty")
    detect0 = Prop(f"detect_{RECEIVERS[0]}")
    return {
        "faulty": faulty,
        f"detect_{RECEIVERS[0]}": detect0,
        f"<> detect_{RECEIVERS[0]}": Eventually(detect0),
        f"K_{RECEIVERS[0]} faulty": Knows(RECEIVERS[0], faulty),
        "E faulty": Everyone(RECEIVERS, faulty),
        "C faulty": Common(RECEIVERS, faulty),
    }


RECIPE = ScenarioRecipe(
    name="byzantine_general",
    summary="an equivocating general: receivers detect faultiness by echo (system of runs)",
    section="Section 5 (framework); byzantine folklore",
    processors=(GENERAL,) + RECEIVERS,
    protocol=EquivocatingGeneralProtocol(),
    horizon="horizon",
    delivery=ReliableSynchronous(1),
    adversary=lambda params: (lambda message, time: message.uid < params["drop_first"]),
    parameters=(
        Parameter(
            "horizon",
            int,
            default=4,
            minimum=1,
            maximum=8,
            description="how many time steps each run lasts",
        ),
        Parameter(
            "drop_first",
            int,
            default=0,
            minimum=0,
            maximum=6,
            description="adversary drops the first k messages sent in each run",
        ),
    ),
    initial_states={GENERAL: ("zero", "one", "byz")},
    fact_rules=(_byzantine_facts,),
    formulas=_formulas,
    note="three runs: honest-0, honest-1, and the equivocating general",
    system_name=lambda params: (
        f"byzantine-h{params['horizon']}-d{params['drop_first']}"
    ),
    details=(
        "The general broadcasts its vote once; each receiver echoes the first "
        "vote it hears to the other.  In the `byz` run the echoes contradict "
        "the votes and `detect_r` fires; because the echo channel is "
        "*reliable*, the contradiction eventually makes the faulty run's "
        "local histories unique, so `faulty` climbs all the way from private "
        "detection to `C faulty` — exactly the reliable-channel escape hatch "
        "the coordinated-attack scenarios lack.  The `drop_first` adversary "
        "(an `AdversarialDrops` schedule over the reliable channel) "
        "suppresses early messages; dropping the broadcast destroys "
        "detection and every knowledge level above it."
    ),
)

BYZANTINE = RECIPE.register()
"""The registered :class:`~repro.experiments.registry.ScenarioSpec`."""
