"""Phase-based protocols and timestamped common knowledge (Section 12).

Processors often reason about "the end of phase k" rather than about real time.  In a
system whose clocks are not perfectly synchronised the phases do not end
simultaneously at the different sites, so plain common knowledge of the decision value
is out of reach (Theorem 8); what the processors attain instead is *timestamped*
common knowledge ``C^T`` with the timestamp "end of phase k".

The scenario: two processors with clocks that may be skewed by at most ``skew`` ticks
each decide on a value when their own clock reads ``T``.  The fact ``decided`` is
stable from the moment the first processor decides.  Theorem 12's three statements are
then directly checkable on the resulting system:

(a) with identical clocks, ``C^T decided`` and ``C decided`` agree at the points where
    some clock reads ``T``;
(b) with clocks within ``skew`` of each other, ``C^T decided`` implies
    ``C^skew decided``;
(c) when every clock reads ``T`` at some time in the run, ``C^T decided`` implies
    ``C^<> decided``.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence, Tuple

from repro.errors import ScenarioError
from repro.experiments.registry import (
    BuiltScenario,
    Parameter,
    ScenarioSignature,
    register_scenario,
)
from repro.logic.syntax import CDiamond, CEps, CT, Common, Formula, Prop
from repro.simulation.protocol import Action, Protocol
from repro.simulation.simulator import simulate
from repro.simulation.network import ReliableSynchronous
from repro.systems.clocks import offset_clock, perfect_clock
from repro.systems.runs import LocalHistory, Run
from repro.systems.system import System

__all__ = [
    "P1",
    "P2",
    "DECIDED",
    "PhaseProtocol",
    "build_phase_system",
    "timestamped_common_knowledge",
    "common_knowledge",
    "eps_common_knowledge",
    "eventual_common_knowledge",
]

P1 = "p1"
P2 = "p2"
GROUP = (P1, P2)
DECIDED = Prop("decided")
"""Stable ground fact: some processor has reached its end-of-phase decision."""


class PhaseProtocol(Protocol):
    """Decide (an internal action) when the local clock reads the phase-end time."""

    name = "phase"

    def __init__(self, phase_end: float):
        self.phase_end = phase_end

    def step(self, processor: str, history: LocalHistory, time: int) -> Action:
        if not history.awake or history.clock_readings is None:
            return Action.nothing()
        reading = history.clock_readings[-1]
        already_decided = any(
            event.label == "decide" for event in history.internal_events()
        )
        if reading >= self.phase_end and not already_decided:
            return Action.act("decide", payload=self.phase_end)
        return Action.nothing()


def _decided_fact(run: Run) -> Mapping[int, frozenset]:
    first: Optional[int] = None
    for time in run.times():
        if any(
            run.performed(p, "decide", time) for p in run.processors
        ):
            first = time
            break
    if first is None:
        return {}
    return {t: frozenset({DECIDED.name}) for t in range(first, run.duration + 1)}


def build_phase_system(
    phase_end: int, skew: int, horizon: Optional[int] = None
) -> System:
    """Enumerate the runs of the phase protocol with clock skews ``0 .. skew``.

    Processor ``p1`` has a perfect clock; ``p2``'s clock may lag behind real time by
    any amount up to ``skew`` ticks (one run per lag).  With ``skew = 0`` the clocks
    are identical and the phases end simultaneously.
    """
    if phase_end < 0 or skew < 0:
        raise ScenarioError("phase_end and skew must be non-negative")
    duration = horizon if horizon is not None else phase_end + skew + 2
    p1_clock = perfect_clock(duration)
    p2_clocks = tuple(offset_clock(duration, -lag) for lag in range(skew + 1))
    return simulate(
        PhaseProtocol(phase_end),
        GROUP,
        duration=duration,
        delivery=ReliableSynchronous(delay=1),
        clocks={P1: (p1_clock,), P2: p2_clocks},
        fact_rules=[_decided_fact],
        system_name=f"phases-T{phase_end}-skew{skew}",
    )


# -- registry entry ----------------------------------------------------------

def _registry_formulas(params):
    """Default formula set: Theorem 12's comparison of the C variants."""
    phase_end, skew = params["phase_end"], params["skew"]
    return {
        "decided": DECIDED,
        f"C^T({phase_end}) decided": timestamped_common_knowledge(phase_end),
        "C decided": common_knowledge(),
        f"C^eps({skew}) decided": eps_common_knowledge(skew),
        "C^<> decided": eventual_common_knowledge(),
    }


def _registry_signature(params) -> ScenarioSignature:
    """Static signature: p2's clock lags by up to ``skew`` (custom clocks)."""
    return ScenarioSignature(
        agents=GROUP,
        horizon=params["phase_end"] + params["skew"] + 2,
        custom_clocks=True,
    )


@register_scenario(
    name="phases",
    summary="phase-end decisions under clock skew: timestamped common knowledge (system of runs)",
    section="Section 12",
    parameters=(
        Parameter("phase_end", int, default=2, minimum=0, description="the clock reading T at which each processor decides"),
        Parameter("skew", int, default=1, minimum=0, description="maximum clock skew in ticks (one run per lag)"),
    ),
    formulas=_registry_formulas,
    signature=_registry_signature,
    details=(
        "With skewed clocks the phases do not end simultaneously, so plain C "
        "decided is out of reach (Theorem 8); the processors attain C^T decided "
        "with timestamp 'end of phase', which implies C^skew and C^<> (Theorem 12)."
    ),
)
def build_phases_scenario(phase_end: int, skew: int) -> BuiltScenario:
    """Registry builder: the phase protocol with clock skews 0..skew."""
    return BuiltScenario(
        model=build_phase_system(phase_end, skew),
        note="no focus point: Theorem 12 relates validity of the C variants",
    )


def timestamped_common_knowledge(phase_end: float) -> Formula:
    """``C^T decided`` with timestamp ``T = phase_end``."""
    return CT(GROUP, DECIDED, float(phase_end))


def common_knowledge() -> Formula:
    """Plain ``C decided``."""
    return Common(GROUP, DECIDED)


def eps_common_knowledge(eps: int) -> Formula:
    """``C^eps decided``."""
    return CEps(GROUP, DECIDED, eps)


def eventual_common_knowledge() -> Formula:
    """``C^<> decided``."""
    return CDiamond(GROUP, DECIDED)
