"""Gossip / rumor spreading, expressed purely in the scenario DSL.

``n`` processors sit on a ring; each starts with a private bit (its "secret").
At every time step each processor sends everything it has learned so far to its
clockwise neighbour.  Under reliable synchronous delivery the secrets propagate
one hop per two time steps (send, deliver), so the interesting knowledge
questions are *when* processor ``j`` comes to know processor ``i``'s secret,
when everyone knows every secret, and why common knowledge of the secrets is
still delayed by the ring's diameter.

The scenario exists to exercise the DSL with a parameter-sized processor set:
the processor tuple, the protocol, the fact rules and the formula suite all
depend on ``n``, so every ingredient goes through the recipe's callable form.

Facts: ``secret_i`` holds (at every time) in exactly the runs where processor
``i``'s bit is 1 — the valuation varies across the ``2^n`` initial
configurations, which is what makes knowing a secret non-trivial.
"""

from __future__ import annotations

from typing import Dict, Mapping, Tuple

from repro.experiments.registry import Parameter
from repro.logic.syntax import Common, Everyone, Formula, Knows, Or, Prop
from repro.scenarios.dsl import ScenarioRecipe
from repro.simulation.network import ReliableSynchronous
from repro.simulation.protocol import Action, Protocol
from repro.systems.runs import LocalHistory, Run

__all__ = ["RingGossipProtocol", "GOSSIP", "knows_whether", "gossip_processors"]


def gossip_processors(n: int) -> Tuple[str, ...]:
    """The ring's processor names ``g0 .. g{n-1}``."""
    return tuple(f"g{i}" for i in range(n))


class RingGossipProtocol(Protocol):
    """Every step, forward everything you know to your clockwise neighbour.

    "Everything you know" is the set of ``(origin, bit)`` pairs the processor
    has learned: its own secret plus every pair it has received.  The content is
    a sorted tuple, so identical knowledge states send identical messages and
    the protocol stays a deterministic function of the history.
    """

    name = "ring-gossip"

    def __init__(self, ring: Tuple[str, ...]):
        self.ring = tuple(ring)
        self._next = {p: ring[(i + 1) % len(ring)] for i, p in enumerate(ring)}

    def step(self, processor: str, history: LocalHistory, time: int) -> Action:
        """Forward the accumulated ``(origin, bit)`` set to the next processor."""
        if not history.awake:
            return Action.nothing()
        known = {(processor, history.initial_state)}
        for message in history.received_messages():
            for origin, bit in message.content:
                known.add((origin, bit))
        return Action.send(self._next[processor], tuple(sorted(known)))


def _secret_facts(run: Run) -> Mapping[int, frozenset]:
    """``secret_i`` holds everywhere in runs where processor ``i``'s bit is 1."""
    names = frozenset(
        f"secret_{i}"
        for i, processor in enumerate(run.processors)
        if run.initial_state(processor) == 1
    )
    if not names:
        return {}
    return {time: names for time in run.times()}


def knows_whether(agent: str, fact: Formula) -> Formula:
    """``K_a fact | K_a ~fact``: the agent knows *which way* the fact goes."""
    return Or((Knows(agent, fact), Knows(agent, ~fact)))


def _formulas(params: Mapping[str, object]) -> Dict[str, object]:
    """The suite: who knows the far secret, and does it ever become common."""
    n = params["n"]
    ring = gossip_processors(n)
    secret0 = Prop("secret_0")
    neighbour = ring[1 % n]
    far = ring[-1]
    return {
        "secret_0": secret0,
        f"K_{neighbour} whether secret_0": knows_whether(neighbour, secret0),
        f"K_{far} whether secret_0": knows_whether(far, secret0),
        "E whether secret_0": Everyone(ring, knows_whether(ring[0], secret0)),
        "C secret_0": Common(ring, secret0),
    }


RECIPE = ScenarioRecipe(
    name="gossip",
    summary="rumor spreading on a ring: when does a secret become known? (system of runs)",
    section="Section 5 (framework); gossip folklore",
    processors=lambda params: gossip_processors(params["n"]),
    protocol=lambda params: RingGossipProtocol(gossip_processors(params["n"])),
    horizon="horizon",
    delivery=ReliableSynchronous(1),
    parameters=(
        Parameter("n", int, default=3, minimum=2, maximum=6, description="ring size"),
        Parameter(
            "horizon",
            int,
            default=4,
            minimum=1,
            maximum=10,
            description="how many time steps each run lasts",
        ),
    ),
    initial_states=lambda params: {
        p: (0, 1) for p in gossip_processors(params["n"])
    },
    fact_rules=(_secret_facts,),
    formulas=_formulas,
    note="2^n runs, one per assignment of secret bits; no focus point",
    system_name=lambda params: f"gossip-n{params['n']}-h{params['horizon']}",
    details=(
        "Each processor forwards everything it has learned to its clockwise "
        "neighbour under reliable synchronous delivery.  A secret crosses one "
        "hop every two steps (send, deliver), so `K_g1 whether secret_0` turns "
        "true at time 2, the far neighbour learns it after ~2(n-1) steps, and "
        "`C secret_0` stays false until the valuation is common to the whole "
        "ring — the DSL's first parameter-sized scenario family."
    ),
)

GOSSIP = RECIPE.register()
"""The registered :class:`~repro.experiments.registry.ScenarioSpec`."""
