"""The muddy children puzzle (Section 2).

``n`` children play together; ``k`` of them get mud on their foreheads.  Each sees
every forehead but its own.  The father announces "at least one of you has mud on your
forehead" and then repeatedly asks "can any of you prove you have mud on your head?",
with the children answering simultaneously and truthfully.

The paper's claims, all reproduced here and exercised by experiment E1:

* With the announcement, the muddy children answer "no" to the first ``k - 1``
  questions and "yes" to the ``k``-th.
* Without the announcement, nobody ever answers "yes" (the children never learn).
* Before the father speaks, ``E^{k-1} m`` holds but ``E^k m`` does not; after a public
  announcement of ``m``, ``m`` is common knowledge.
* A *private* announcement to each child separately does not help.

The implementation builds the standard Kripke model (worlds = muddiness vectors, each
child observes all foreheads but its own), uses public announcements to model the
father and the rounds of simultaneous answers, and reports what happens round by
round.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.errors import ScenarioError
from repro.experiments.registry import (
    BuiltScenario,
    Parameter,
    ScenarioSignature,
    register_scenario,
)
from repro.kripke.announcement import UpdateChain, public_announce
from repro.kripke.builders import others_attribute_model
from repro.kripke.checker import ModelChecker
from repro.kripke.structure import KripkeStructure
from repro.logic.agents import Agent
from repro.logic.syntax import C, E, Formula, K, Not, Prop, disjunction

__all__ = [
    "MuddyChildren",
    "RoundOutcome",
    "MuddyChildrenResult",
    "announcement_formula_set",
    "run_muddy_children",
]


@dataclass
class RoundOutcome:
    """What happened in one round of the father's question."""

    round_number: int
    answers: Dict[Agent, bool]
    """For each child, whether it answered "yes, I know I am muddy"."""

    @property
    def anyone_knows(self) -> bool:
        """Whether at least one child answered yes in this round."""
        return any(self.answers.values())


@dataclass
class MuddyChildrenResult:
    """The full transcript of a muddy-children experiment."""

    children: Tuple[Agent, ...]
    muddy: Tuple[Agent, ...]
    father_announced: bool
    rounds: List[RoundOutcome]

    @property
    def first_yes_round(self) -> int:
        """The first round in which some child answered yes (0 when none ever did)."""
        for outcome in self.rounds:
            if outcome.anyone_knows:
                return outcome.round_number
        return 0

    @property
    def muddy_children_answered_yes(self) -> bool:
        """Whether exactly the muddy children answered yes in the first yes-round."""
        round_number = self.first_yes_round
        if round_number == 0:
            return False
        outcome = self.rounds[round_number - 1]
        yes_children = {child for child, answer in outcome.answers.items() if answer}
        return yes_children == set(self.muddy)


class MuddyChildren:
    """A configured instance of the puzzle.

    Parameters
    ----------
    n:
        The number of children (named ``"child_0" .. "child_{n-1}"`` unless explicit
        names are given).
    muddy:
        Which children actually have muddy foreheads (the "actual world").
    names:
        Optional explicit child names.
    """

    def __init__(self, n: int, muddy: Sequence[int], names: Sequence[Agent] = ()):
        if n < 1:
            raise ScenarioError("the puzzle needs at least one child")
        if names and len(names) != n:
            raise ScenarioError("names must have length n")
        self.children: Tuple[Agent, ...] = tuple(names) if names else tuple(
            f"child_{i}" for i in range(n)
        )
        muddy_set = set(muddy)
        if not muddy_set <= set(range(n)):
            raise ScenarioError("muddy indices must be within 0..n-1")
        self.muddy_indices: Tuple[int, ...] = tuple(sorted(muddy_set))
        self.actual_world: Tuple[bool, ...] = tuple(
            i in muddy_set for i in range(n)
        )
        self.model: KripkeStructure = others_attribute_model(self.children)

    # -- formulas ---------------------------------------------------------------
    @property
    def at_least_one_muddy(self) -> Formula:
        """The father's fact ``m``: at least one forehead is muddy."""
        return Prop("at_least_one")

    def muddy_prop(self, child: Agent) -> Formula:
        """The proposition "``child`` has a muddy forehead"."""
        return Prop(f"muddy_{child}")

    def knows_own_state(self, child: Agent) -> Formula:
        """``child`` knows whether it is muddy (knows it is, or knows it is not)."""
        muddy = self.muddy_prop(child)
        return disjunction([K(child, muddy), K(child, Not(muddy))])

    def knows_muddy(self, child: Agent) -> Formula:
        """``child`` knows that it is muddy (the "yes" answer)."""
        return K(child, self.muddy_prop(child))

    # -- knowledge-state queries --------------------------------------------------
    def holds_initially(self, formula: Formula) -> bool:
        """Whether ``formula`` holds at the actual world before the father speaks."""
        return ModelChecker(self.model).holds(formula, self.actual_world)

    def e_level_of_m(self, max_level: int = None) -> int:
        """The largest ``j`` such that ``E^j m`` holds initially at the actual world.

        The paper shows this is exactly ``k - 1`` when ``k`` children are muddy
        (and the father has not yet spoken).
        """
        checker = ModelChecker(self.model)
        limit = max_level if max_level is not None else len(self.children) + 1
        level = 0
        for j in range(1, limit + 1):
            if checker.holds(E(self.children, self.at_least_one_muddy, j), self.actual_world):
                level = j
            else:
                break
        return level

    def common_knowledge_of_m_after_announcement(self) -> bool:
        """Whether ``C m`` holds at the actual world after the father's announcement."""
        if not any(self.actual_world):
            raise ScenarioError("the father cannot truthfully announce m when k = 0")
        announced = public_announce(self.model, self.at_least_one_muddy)
        return ModelChecker(announced).holds(
            C(self.children, self.at_least_one_muddy), self.actual_world
        )

    # -- the rounds of questioning ----------------------------------------------------
    def play(
        self,
        rounds: int = None,
        father_announces: bool = True,
        backend: str = None,
    ) -> MuddyChildrenResult:
        """Simulate the father's repeated question.

        Each round, every child simultaneously and publicly answers whether it knows
        its own forehead is muddy; the public answers update the model.  The whole
        chain — the father's announcement and every answer round — runs through one
        :class:`~repro.kripke.announcement.UpdateChain`, so each intermediate model
        is derived from its parent in bitmask space and each round's ``Knows``
        extensions are evaluated exactly once (they both answer the father's
        question *and* drive the update).

        Returns the per-round answers.  With ``father_announces=False`` the initial
        announcement of ``m`` is skipped, reproducing the paper's claim that the
        children then never learn anything.  ``backend`` selects the engine's set
        representation for the chain's evaluators (``None`` follows the
        process-wide default).
        """
        total_rounds = rounds if rounds is not None else len(self.children) + 1
        chain = UpdateChain(self.model, backend=backend)
        if father_announces:
            if not any(self.actual_world):
                raise ScenarioError("the father cannot truthfully announce m when k = 0")
            chain.announce(self.at_least_one_muddy)

        claims = [(child, self.muddy_prop(child)) for child in self.children]
        outcomes: List[RoundOutcome] = []
        for round_number in range(1, total_rounds + 1):
            extensions = chain.answer_round(claims)
            answers = {
                child: self.actual_world in extension
                for (child, _), extension in zip(claims, extensions)
            }
            outcomes.append(RoundOutcome(round_number, answers))
        return MuddyChildrenResult(
            children=self.children,
            muddy=tuple(self.children[i] for i in self.muddy_indices),
            father_announced=father_announces,
            rounds=outcomes,
        )


# -- registry entry ----------------------------------------------------------

def announcement_formula_set(agents: Tuple[Agent, ...], k: int) -> Dict[str, Formula]:
    """The Section 2 E-hierarchy boundary for ``k`` muddy agents.

    Shared by every muddy-children-shaped scenario (the cheating-husbands
    variant reuses it with the queens' names): ``m``, the last level that holds
    (``E^{k-1} m``), the first that fails (``E^k m``), and ``C m``.
    """
    m = Prop("at_least_one")
    formulas: Dict[str, Formula] = {"m": m}
    if k > 1:
        formulas[f"E^{k - 1} m"] = E(agents, m, k - 1)
    if k >= 1:
        formulas[f"E^{k} m"] = E(agents, m, k)
    formulas["C m"] = C(agents, m)
    return formulas


def _registry_formulas(params):
    """Default formula set: the E-hierarchy claims of Section 2."""
    n, k = params["n"], params["k"]
    return announcement_formula_set(tuple(f"child_{i}" for i in range(n)), k)


def _registry_signature(params) -> ScenarioSignature:
    """Static signature: 2^n muddiness vectors, no clocks, bare Kripke model."""
    n = params["n"]
    return ScenarioSignature(
        agents=tuple(f"child_{i}" for i in range(n)),
        kind="kripke",
        universe_size=2 ** n,
    )


@register_scenario(
    name="muddy_children",
    summary="n children, k muddy foreheads; the father's announcement (Kripke model)",
    section="Sections 2 and 10",
    parameters=(
        Parameter("n", int, default=3, minimum=1, description="number of children"),
        Parameter("k", int, default=2, minimum=0, description="how many children are muddy (the first k)"),
        Parameter(
            "announced",
            bool,
            default=False,
            description="apply the father's public announcement of m before evaluating",
        ),
    ),
    formulas=_registry_formulas,
    signature=_registry_signature,
    details=(
        "Worlds are muddiness vectors; each child observes every forehead but its "
        "own.  Before the announcement E^{k-1} m holds at the actual world but E^k m "
        "does not; after the announcement m is common knowledge."
    ),
)
def build_muddy_children_scenario(n: int, k: int, announced: bool) -> BuiltScenario:
    """Registry builder: the n-children Kripke model, focused on the actual world."""
    if k > n:
        raise ScenarioError("k must be between 0 and n")
    puzzle = MuddyChildren(n, muddy=list(range(k)))
    model = puzzle.model
    if announced:
        if k == 0:
            raise ScenarioError("the father cannot truthfully announce m when k = 0")
        model = public_announce(model, puzzle.at_least_one_muddy)
    return BuiltScenario(
        model=model,
        focus=puzzle.actual_world,
        note=f"focus = the actual world (the first {k} of {n} children muddy)",
    )


def run_muddy_children(
    n: int,
    k: int,
    father_announces: bool = True,
    rounds: int = None,
    backend: str = None,
) -> MuddyChildrenResult:
    """Convenience wrapper: ``n`` children, the first ``k`` of them muddy.

    >>> result = run_muddy_children(3, 2)
    >>> result.first_yes_round
    2
    >>> result.muddy_children_answered_yes
    True
    """
    if not 0 <= k <= n:
        raise ScenarioError("k must be between 0 and n")
    puzzle = MuddyChildren(n, muddy=list(range(k)))
    return puzzle.play(rounds=rounds, father_announces=father_announces, backend=backend)
