"""The sequence transmission problem over a faulty line, in the scenario DSL.

A sender ``S`` must transmit a sequence of bits to a receiver ``R`` over a
channel that may lose or arbitrarily delay messages — the data-link setting the
paper's Theorem 7/NG1' analysis speaks to: because the channel satisfies NG1',
the receiver can come to *know* each bit, but common knowledge of any bit is
unattainable, so the protocol has to work with plain knowledge gain.

The protocol is a stop-and-wait (alternating-bit-style) scheme:

* ``S`` repeatedly sends ``("bit", i, b_i)`` where ``i`` is the lowest index it
  has not yet seen acknowledged, until every bit is acknowledged.
* ``R`` replies ``("ack", i)`` whenever it holds bit ``i`` but has not yet
  acknowledged it.

Facts: ``bit_i`` holds at every time of runs where the transmitted sequence
has ``b_i = 1`` (the sequence is the sender's initial state and varies across
runs), and ``got_i`` holds from the moment ``R`` first receives bit ``i``.

The delivery model is a parameter (the fuzz matrix's four kinds), so one
scenario family sweeps the same protocol across every communication assumption
— the product the DSL exists to express.
"""

from __future__ import annotations

from typing import Dict, Mapping, Tuple

from repro.experiments.registry import Parameter
from repro.logic.syntax import Common, Eventually, Knows, Prop
from repro.scenarios.dsl import ScenarioRecipe
from repro.scenarios.gossip import knows_whether
from repro.simulation.fuzz import DELIVERY_KINDS, delivery_models
from repro.simulation.protocol import Action, Protocol
from repro.systems.runs import LocalHistory, Run

__all__ = ["SENDER", "RECEIVER", "StopAndWaitProtocol", "SEQUENCE_TRANSMISSION"]

SENDER = "S"
RECEIVER = "R"


class StopAndWaitProtocol(Protocol):
    """Stop-and-wait sequence transmission: resend until acknowledged.

    The sender's initial state is the bit tuple to transmit.  Both roles are
    deterministic functions of their histories: the sender's cursor is the
    number of distinct acknowledged indices, the receiver acknowledges each
    index exactly once.
    """

    name = "stop-and-wait"

    def __init__(self, n_bits: int):
        self.n_bits = n_bits

    def step(self, processor: str, history: LocalHistory, time: int) -> Action:
        """Sender: (re)send the lowest unacknowledged bit.  Receiver: ack news."""
        if not history.awake:
            return Action.nothing()
        if processor == SENDER:
            bits = history.initial_state
            acked = {
                message.content[1]
                for message in history.received_messages()
                if message.content[0] == "ack"
            }
            cursor = 0
            while cursor in acked:
                cursor += 1
            if cursor >= len(bits):
                return Action.nothing()
            return Action.send(RECEIVER, ("bit", cursor, bits[cursor]))
        held = {
            message.content[1]
            for message in history.received_messages()
            if message.content[0] == "bit"
        }
        acked = {
            message.content[1]
            for message in history.sent_messages()
            if message.content[0] == "ack"
        }
        pending = sorted(held - acked)
        if pending:
            return Action.send(SENDER, ("ack", pending[0]))
        return Action.nothing()


def _sequence_facts(run: Run) -> Mapping[int, frozenset]:
    """``bit_i`` per the transmitted sequence; ``got_i`` once ``R`` holds it."""
    bits = run.initial_state(SENDER)
    stable = frozenset(f"bit_{i}" for i, bit in enumerate(bits) if bit == 1)
    facts: Dict[int, set] = {time: set(stable) for time in run.times()}
    held: set = set()
    for time in run.times():
        for event in run.events_at(RECEIVER, time):
            if type(event).__name__ == "ReceiveEvent" and event.message.content[0] == "bit":
                held.add(event.message.content[1])
        facts[time].update(f"got_{i}" for i in held)
    return {time: frozenset(names) for time, names in facts.items() if names}


def _all_sequences(n_bits: int) -> Tuple[Tuple[int, ...], ...]:
    """Every bit tuple of length ``n_bits`` (the sender's possible sequences)."""
    sequences = [()]
    for _ in range(n_bits):
        sequences = [seq + (bit,) for seq in sequences for bit in (0, 1)]
    return tuple(sequences)


def _formulas(params: Mapping[str, object]) -> Dict[str, object]:
    """The suite: the receiver's knowledge of bit 0, and its impossibility edge."""
    bit0 = Prop("bit_0")
    got0 = Prop("got_0")
    pair = (SENDER, RECEIVER)
    return {
        "bit_0": bit0,
        "got_0": got0,
        "K_R whether bit_0": knows_whether(RECEIVER, bit0),
        "K_S got_0": Knows(SENDER, got0),
        "<> got_0": Eventually(got0),
        "C whether bit_0": Common(pair, knows_whether(RECEIVER, bit0)),
    }


RECIPE = ScenarioRecipe(
    name="sequence_transmission",
    summary="stop-and-wait bit transmission over a faulty line (system of runs)",
    section="Section 9 / Theorem 7 (NG1' channels)",
    processors=(SENDER, RECEIVER),
    protocol=lambda params: StopAndWaitProtocol(params["n_bits"]),
    horizon="horizon",
    delivery=lambda params: delivery_models(params["delivery"], params["horizon"]),
    parameters=(
        Parameter(
            "n_bits",
            int,
            default=1,
            minimum=1,
            maximum=3,
            description="length of the transmitted bit sequence",
        ),
        Parameter(
            "horizon",
            int,
            default=3,
            minimum=1,
            maximum=6,
            description="how many time steps each run lasts",
        ),
        Parameter(
            "delivery",
            str,
            default="unreliable",
            choices=DELIVERY_KINDS,
            description="communication assumption (fuzz-matrix delivery kind)",
        ),
    ),
    initial_states=lambda params: {SENDER: _all_sequences(params["n_bits"])},
    fact_rules=(_sequence_facts,),
    formulas=_formulas,
    note="one branch per transmitted sequence and delivery choice; no focus point",
    system_name=lambda params: (
        f"seqtx-b{params['n_bits']}-h{params['horizon']}-{params['delivery']}"
    ),
    max_runs=100_000,
    details=(
        "The sender retransmits the lowest unacknowledged bit; the receiver "
        "acknowledges each index once.  Over the lossy/asynchronous kinds the "
        "channel satisfies NG1', so `K_R whether bit_0` is attainable but "
        "`C whether bit_0` never holds before the horizon — sequence "
        "transmission needs only knowledge, not common knowledge."
    ),
)

SEQUENCE_TRANSMISSION = RECIPE.register()
"""The registered :class:`~repro.experiments.registry.ScenarioSpec`."""
