"""Distributed commit and internal knowledge consistency (Sections 8 and 13).

Committing a transaction "roughly corresponds to entering into an agreement that the
transaction has taken place".  In practice different sites commit at slightly
different times, so during a short window the sites' views of the database history are
inconsistent; once every site has committed, the histories agree again.

The scenario: a coordinator sends "commit" to a participant over a channel that takes
zero or one tick.  Both sites adopt the *eager* epistemic interpretation of Section 8:
each starts believing "the commit is common knowledge" as soon as it locally learns of
the commit (the coordinator when it sends, the participant when it receives).  That
interpretation is **not** knowledge consistent — during the delivery window the
coordinator's belief is false — but it **is** internally knowledge consistent: the
subsystem of runs with instantaneous delivery witnesses the definition of Section 13,
and no site ever observes anything contradicting the eager assumption.

Experiment E10 checks both halves of that claim.
"""

from __future__ import annotations

from typing import Mapping, Optional, Tuple

from repro.errors import ScenarioError
from repro.experiments.registry import (
    BuiltScenario,
    Parameter,
    ScenarioSignature,
    register_scenario,
)
from repro.logic.syntax import Common, Knows, Prop
from repro.simulation.network import BoundedUncertain
from repro.simulation.protocol import Action, Protocol
from repro.simulation.simulator import simulate
from repro.systems.epistemic import EpistemicInterpretation, eager_belief_assignment
from repro.systems.runs import LocalHistory, Run
from repro.systems.system import System

__all__ = [
    "COORDINATOR",
    "PARTICIPANT",
    "COMMITTED",
    "build_commit_system",
    "eager_interpretation",
    "fastest_delivery_runs",
]

COORDINATOR = "coordinator"
PARTICIPANT = "participant"
GROUP = (COORDINATOR, PARTICIPANT)
COMMITTED = Prop("commit_initiated")
"""Stable ground fact: the coordinator has initiated the commit."""


class _CommitProtocol(Protocol):
    """The coordinator sends "commit" once, at time 0; the participant is passive."""

    name = "commit"

    def step(self, processor: str, history: LocalHistory, time: int) -> Action:
        if processor == COORDINATOR and time == 0 and not history.sent_messages():
            return Action.send(PARTICIPANT, "commit")
        return Action.nothing()


def _committed_fact(run: Run) -> Mapping[int, frozenset]:
    send_time: Optional[int] = None
    for time in run.times():
        if any(
            type(event).__name__ == "SendEvent"
            for event in run.events_at(COORDINATOR, time)
        ):
            send_time = time
            break
    if send_time is None:
        return {}
    return {t: frozenset({COMMITTED.name}) for t in range(send_time, run.duration + 1)}


def build_commit_system(min_delay: int = 0, max_delay: int = 1, horizon: int = 3) -> System:
    """All runs of the one-message commit with delivery in ``min_delay .. max_delay``."""
    if not 0 <= min_delay <= max_delay:
        raise ScenarioError("need 0 <= min_delay <= max_delay")
    return simulate(
        _CommitProtocol(),
        GROUP,
        duration=horizon,
        delivery=BoundedUncertain(min_delay, max_delay),
        fact_rules=[_committed_fact],
        system_name=f"commit-{min_delay}-{max_delay}",
    )


# -- registry entry ----------------------------------------------------------

def _registry_formulas(params):
    """Default formula set: who knows about the commit, and is it ever common."""
    return {
        "committed": COMMITTED,
        "K_coord committed": Knows(COORDINATOR, COMMITTED),
        "K_part committed": Knows(PARTICIPANT, COMMITTED),
        "C committed": Common(GROUP, COMMITTED),
    }


def _registry_signature(params) -> ScenarioSignature:
    """Static signature: coordinator + participant, runs last ``horizon`` ticks."""
    return ScenarioSignature(agents=GROUP, horizon=params["horizon"])


@register_scenario(
    name="commit",
    summary="one-message distributed commit over a 0..1-tick channel (system of runs)",
    section="Sections 8 and 13",
    parameters=(
        Parameter("min_delay", int, default=0, minimum=0, description="fastest possible delivery in ticks"),
        Parameter("max_delay", int, default=1, minimum=0, description="slowest possible delivery in ticks"),
        Parameter("horizon", int, default=3, minimum=1, description="how many time steps each run lasts"),
    ),
    formulas=_registry_formulas,
    signature=_registry_signature,
    details=(
        "During the delivery window the sites' views of the commit disagree, so "
        "the eager interpretation ('the commit is common knowledge as soon as I "
        "learn of it') is not knowledge consistent — but it is *internally* "
        "knowledge consistent (Section 13), witnessed by the instantaneous-delivery "
        "subsystem."
    ),
)
def build_commit_scenario(min_delay: int, max_delay: int, horizon: int) -> BuiltScenario:
    """Registry builder: every run of the one-message commit."""
    system = build_commit_system(min_delay=min_delay, max_delay=max_delay, horizon=horizon)
    return BuiltScenario(
        model=system,
        note="no focus point: Section 13's claims compare whole interpretations",
    )


def _locally_learned(processor: str, history: LocalHistory) -> bool:
    """Whether the site has locally learned of the commit (sent or received it)."""
    if not history.awake:
        return False
    if processor == COORDINATOR:
        return bool(history.sent_messages())
    return bool(history.received_messages())


def eager_interpretation(system: System) -> EpistemicInterpretation:
    """The eager epistemic interpretation: believe ``C commit`` as soon as the commit
    is locally known."""
    assignment = eager_belief_assignment(COMMITTED, GROUP, _locally_learned)
    return EpistemicInterpretation(system, assignment)


def fastest_delivery_runs(system: System, delay: int = 0) -> Tuple[Run, ...]:
    """The subsystem candidate ``R'``: the runs in which the commit message is
    delivered exactly ``delay`` ticks after it was sent."""
    chosen = []
    for run in system.runs:
        send_time = None
        receive_time = None
        for time in run.times():
            if any(
                type(e).__name__ == "SendEvent" for e in run.events_at(COORDINATOR, time)
            ):
                send_time = time if send_time is None else send_time
            if any(
                type(e).__name__ == "ReceiveEvent"
                for e in run.events_at(PARTICIPANT, time)
            ):
                receive_time = time if receive_time is None else receive_time
        if send_time is not None and receive_time == send_time + delay:
            chosen.append(run)
    return tuple(chosen)
