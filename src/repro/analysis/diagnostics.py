"""Structured diagnostics for the static formula/recipe checker.

The static analyzer in :mod:`repro.logic.check` reports its findings as
:class:`Diagnostic` records — stable machine-readable codes (``REP001`` …),
a severity (``error`` / ``warning``), the path of the offending node inside
the formula tree, a human-readable message and a fix hint.  This module owns
the record type, the code table and the rendering/aggregation helpers shared
by every surface (the ``repro check`` CLI verb, the runner pre-flight and the
scenario-DSL lint).

Severity semantics:

* ``error`` — the formula will misevaluate or raise at evaluation time
  (unbound variable, positivity violation, unknown agent, …).  Pre-flight
  refuses to run such a batch.
* ``warning`` — the formula is evaluable but suspicious (shadowed fixpoint
  variable, trivially-false over-horizon timestamp under drifting clocks,
  an expensive fixpoint nest).  ``repro check --strict`` promotes warnings
  to failures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Diagnostic",
    "SEVERITY_ERROR",
    "SEVERITY_WARNING",
    "CODE_TABLE",
    "has_errors",
    "worst_severity",
    "render_diagnostic",
    "render_diagnostics",
    "summarize",
]

SEVERITY_ERROR = "error"
"""Severity for findings that make a formula unevaluable or unsound."""

SEVERITY_WARNING = "warning"
"""Severity for suspicious-but-evaluable findings."""

CODE_TABLE: Dict[str, str] = {
    "REP001": "formula text does not parse",
    "REP002": "unbound fixpoint variable",
    "REP003": "fixpoint positivity violation (variable under an odd number of negations)",
    "REP004": "shadowed fixpoint variable (inner binder rebinds an outer name)",
    "REP101": "unknown agent for this scenario",
    "REP102": "group mentions no agent of this scenario",
    "REP103": "timestamp beyond the scenario horizon",
    "REP104": "fractional epsilon on an E^eps/C^eps operator",
    "REP105": "temporal-epistemic operator against a bare Kripke scenario",
    "REP201": "costly fixpoint nesting for the scenario's universe size",
}
"""Stable code → short description, rendered into docs/architecture.md."""


@dataclass(frozen=True)
class Diagnostic:
    """One finding of the static checker.

    Attributes
    ----------
    code:
        Stable machine-readable code (``REP001`` …); see :data:`CODE_TABLE`.
    severity:
        :data:`SEVERITY_ERROR` or :data:`SEVERITY_WARNING`.
    message:
        Human-readable description of the finding.
    path:
        Dotted path of the offending node inside the formula tree, e.g.
        ``"GreatestFixpoint.body.Not.operand.Var"``.  Empty for whole-formula
        findings (parse errors).
    hint:
        A concrete suggestion for fixing the finding; may be empty.
    label:
        The label of the formula inside a batch (empty when checking a single
        anonymous formula).
    """

    code: str
    severity: str
    message: str
    path: str = ""
    hint: str = ""
    label: str = ""

    def __post_init__(self) -> None:
        if self.severity not in (SEVERITY_ERROR, SEVERITY_WARNING):
            raise ValueError(f"unknown diagnostic severity {self.severity!r}")

    @property
    def is_error(self) -> bool:
        """Whether this finding has error severity."""
        return self.severity == SEVERITY_ERROR

    def to_dict(self) -> Dict[str, str]:
        """A JSON-ready representation (used by ``repro check --json``)."""
        return {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
            "path": self.path,
            "hint": self.hint,
            "label": self.label,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, str]) -> "Diagnostic":
        """Rebuild a diagnostic from :meth:`to_dict` output."""
        return cls(
            code=payload["code"],
            severity=payload["severity"],
            message=payload["message"],
            path=payload.get("path", ""),
            hint=payload.get("hint", ""),
            label=payload.get("label", ""),
        )


def has_errors(diagnostics: Iterable[Diagnostic], strict: bool = False) -> bool:
    """Whether any diagnostic should fail a check.

    With ``strict=True`` warnings count as failures too (the ``--strict``
    contract of ``repro check``).
    """
    for diagnostic in diagnostics:
        if strict or diagnostic.is_error:
            return True
    return False


def worst_severity(diagnostics: Iterable[Diagnostic]) -> Optional[str]:
    """The most severe level present, or ``None`` for a clean result."""
    worst: Optional[str] = None
    for diagnostic in diagnostics:
        if diagnostic.is_error:
            return SEVERITY_ERROR
        worst = SEVERITY_WARNING
    return worst


def render_diagnostic(diagnostic: Diagnostic) -> str:
    """One-line human rendering: ``CODE severity [label] path: message (hint)``."""
    parts = [diagnostic.code, diagnostic.severity]
    if diagnostic.label:
        parts.append(f"[{diagnostic.label}]")
    if diagnostic.path:
        parts.append(f"at {diagnostic.path}")
    head = " ".join(parts)
    line = f"{head}: {diagnostic.message}"
    if diagnostic.hint:
        line += f" (hint: {diagnostic.hint})"
    return line


def render_diagnostics(diagnostics: Sequence[Diagnostic]) -> List[str]:
    """Render a list of diagnostics, errors first, stable within severity."""
    ordered = sorted(
        diagnostics, key=lambda d: (0 if d.is_error else 1, d.code, d.label, d.path)
    )
    return [render_diagnostic(d) for d in ordered]


def summarize(diagnostics: Sequence[Diagnostic]) -> str:
    """A one-line count summary, e.g. ``2 errors, 1 warning``."""
    errors = sum(1 for d in diagnostics if d.is_error)
    warnings = len(diagnostics) - errors
    error_part = f"{errors} error{'s' if errors != 1 else ''}"
    warning_part = f"{warnings} warning{'s' if warnings != 1 else ''}"
    return f"{error_part}, {warning_part}"
