"""Analysis layer (system S12 of DESIGN.md).

Executable forms of the paper's theorems and analyses: the knowledge hierarchy of
Section 3, the attainability results of Section 8 / Appendix B, the coordination ↔
knowledge correspondences of Sections 7, 11 and 12, and the clock-synchronisation
helpers used by Theorem 12 and Proposition 15.  The structured diagnostics the
static formula checker emits (:mod:`repro.analysis.diagnostics`) live here too.
"""

from repro.analysis.diagnostics import (
    CODE_TABLE,
    Diagnostic,
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    has_errors,
    render_diagnostic,
    render_diagnostics,
    summarize,
    worst_severity,
)
from repro.analysis.attainability import (
    TheoremReport,
    initial_point_reachable,
    matching_silent_run,
    verify_proposition13,
    verify_theorem11,
    verify_theorem5,
    verify_theorem8,
    verify_theorem9,
)
from repro.analysis.clock_sync import (
    Theorem12Report,
    clocks_identical,
    every_clock_reads,
    maximum_clock_skew,
    uncertainty_gives_imprecision,
    verify_theorem12,
)
from repro.analysis.coordination import (
    ActionCoordination,
    action_coordination,
    coordination_spread,
    knowledge_when_acting,
    simultaneous_action_implies_common_knowledge,
)
from repro.analysis.hierarchy import (
    HierarchyLevel,
    HierarchyReport,
    check_hierarchy,
    hierarchy_collapses,
    hierarchy_formulas,
    separation_profile,
)

__all__ = [
    "CODE_TABLE",
    "Diagnostic",
    "SEVERITY_ERROR",
    "SEVERITY_WARNING",
    "has_errors",
    "render_diagnostic",
    "render_diagnostics",
    "summarize",
    "worst_severity",
    "TheoremReport",
    "initial_point_reachable",
    "matching_silent_run",
    "verify_proposition13",
    "verify_theorem11",
    "verify_theorem5",
    "verify_theorem8",
    "verify_theorem9",
    "Theorem12Report",
    "clocks_identical",
    "every_clock_reads",
    "maximum_clock_skew",
    "uncertainty_gives_imprecision",
    "verify_theorem12",
    "ActionCoordination",
    "action_coordination",
    "coordination_spread",
    "knowledge_when_acting",
    "simultaneous_action_implies_common_knowledge",
    "HierarchyLevel",
    "HierarchyReport",
    "check_hierarchy",
    "hierarchy_collapses",
    "hierarchy_formulas",
    "separation_profile",
]
