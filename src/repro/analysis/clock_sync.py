"""Clocks, skew, and what they buy (Sections 8, 12; Appendix B) — experiments E6, E9.

Helpers relating clock behaviour across a system to the knowledge states that are
attainable in it:

* :func:`maximum_clock_skew` — the worst-case difference between any two processors'
  clock readings anywhere in the system (the ``eps`` of Theorem 12(b)).
* :func:`clocks_identical` — the hypothesis of Theorem 12(a).
* :func:`every_clock_reads` — the hypothesis of Theorem 12(c).
* :func:`verify_theorem12` — all three implications of Theorem 12, checked pointwise.
* :func:`uncertainty_gives_imprecision` — the discrete analogue of Proposition 15:
  a system with uncertain delivery and uncertain start times has temporal imprecision.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.logic.agents import GroupLike, as_group
from repro.logic.syntax import CDiamond, CEps, Common, CT, Formula
from repro.systems.conditions import ConditionReport, has_temporal_imprecision, uncertain_start_times
from repro.systems.interpretation import ViewBasedInterpretation
from repro.systems.runs import Point
from repro.systems.system import System

__all__ = [
    "maximum_clock_skew",
    "clocks_identical",
    "every_clock_reads",
    "Theorem12Report",
    "verify_theorem12",
    "uncertainty_gives_imprecision",
]


def maximum_clock_skew(system: System) -> Optional[float]:
    """The largest difference between two processors' clock readings at any point.

    Returns ``None`` when some processor has no clock in some run (skew is then
    undefined).
    """
    worst = 0.0
    for run in system.runs:
        for time in run.times():
            readings = []
            for processor in run.processors:
                reading = run.clock_reading(processor, time)
                if reading is None:
                    return None
                readings.append(reading)
            worst = max(worst, max(readings) - min(readings))
    return worst


def clocks_identical(system: System) -> bool:
    """Whether all processors' clocks show identical readings at every point."""
    skew = maximum_clock_skew(system)
    return skew is not None and skew == 0.0


def every_clock_reads(system: System, timestamp: float) -> bool:
    """Whether, in every run, each processor's clock reads ``timestamp`` at some time."""
    for run in system.runs:
        for processor in run.processors:
            if not any(
                run.clock_reading(processor, time) == timestamp for time in run.times()
            ):
                return False
    return True


@dataclass
class Theorem12Report:
    """The three implications of Theorem 12 checked on one system."""

    part_a_applicable: bool
    part_a_holds: bool
    part_b_applicable: bool
    part_b_holds: bool
    part_c_applicable: bool
    part_c_holds: bool
    counterexamples: List[str] = field(default_factory=list)

    @property
    def holds(self) -> bool:
        """Whether every applicable part holds."""
        return (
            (not self.part_a_applicable or self.part_a_holds)
            and (not self.part_b_applicable or self.part_b_holds)
            and (not self.part_c_applicable or self.part_c_holds)
        )

    def __bool__(self) -> bool:
        return self.holds


def verify_theorem12(
    interpretation: ViewBasedInterpretation,
    group: GroupLike,
    fact: Formula,
    timestamp: float,
    limit: int = 5,
) -> Theorem12Report:
    """Check Theorem 12 on a concrete system.

    (a) if all clocks are identical: at the points where some processor's clock reads
        ``timestamp``, ``C^T fact`` and ``C fact`` agree;
    (b) if all clocks are within ``eps`` of each other: ``C^T fact -> C^eps fact`` at
        those points;
    (c) if every clock reads ``timestamp`` at some time in every run:
        ``C^T fact -> C^<> fact`` everywhere.
    """
    g = as_group(group)
    system = interpretation.system
    skew = maximum_clock_skew(system)
    identical = clocks_identical(system)
    reads_everywhere = every_clock_reads(system, timestamp)

    ct_extension = interpretation.extension(CT(g, fact, timestamp))
    c_extension = interpretation.extension(Common(g, fact))
    cd_extension = interpretation.extension(CDiamond(g, fact))
    ceps_extension = (
        interpretation.extension(CEps(g, fact, int(skew))) if skew is not None else frozenset()
    )

    report = Theorem12Report(
        part_a_applicable=identical,
        part_a_holds=True,
        part_b_applicable=skew is not None,
        part_b_holds=True,
        part_c_applicable=reads_everywhere,
        part_c_holds=True,
    )

    def clock_reads_timestamp(point: Point) -> bool:
        run, time = point
        return any(
            run.clock_reading(processor, time) == timestamp for processor in run.processors
        )

    for point in interpretation.points:
        at_timestamp = clock_reads_timestamp(point)
        in_ct = point in ct_extension
        if report.part_a_applicable and at_timestamp:
            if in_ct != (point in c_extension):
                report.part_a_holds = False
                if len(report.counterexamples) < limit:
                    report.counterexamples.append(f"(a) fails at {point!r}")
        if report.part_b_applicable and at_timestamp and in_ct:
            if point not in ceps_extension:
                report.part_b_holds = False
                if len(report.counterexamples) < limit:
                    report.counterexamples.append(f"(b) fails at {point!r}")
        if report.part_c_applicable and in_ct:
            if point not in cd_extension:
                report.part_c_holds = False
                if len(report.counterexamples) < limit:
                    report.counterexamples.append(f"(c) fails at {point!r}")
    return report


def uncertainty_gives_imprecision(system: System, shift: int = 1) -> ConditionReport:
    """Proposition 15, discretised: check that the system has temporal imprecision.

    The caller is expected to have built the system with both delivery-time
    uncertainty and start-time uncertainty (e.g. via the simulator's ``wake_times``
    choices); this helper simply runs the temporal-imprecision check and returns its
    report, so benchmarks and tests can assert the conclusion of Proposition 15.
    """
    return has_temporal_imprecision(system, shift=shift)
