"""The hierarchy of states of group knowledge (Section 3) — experiment E2.

``C phi  =>  E^{k+1} phi  =>  E^k phi  =>  E phi  =>  S phi  =>  D phi  =>  phi``

This module checks the hierarchy on concrete models, measures where adjacent levels
*separate* (hold at strictly fewer worlds), and reproduces the two collapse cases the
paper discusses: the shared-memory model (all levels coincide) and the single-view
model (everything valid is common knowledge).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.logic.agents import GroupLike, as_group
from repro.logic.syntax import (
    C,
    Common,
    D,
    Distributed,
    E,
    Everyone,
    Formula,
    S,
    Someone,
)
from repro.kripke.checker import ModelChecker
from repro.kripke.structure import KripkeStructure
from repro.systems.interpretation import ViewBasedInterpretation

__all__ = [
    "HierarchyLevel",
    "hierarchy_formulas",
    "HierarchyReport",
    "check_hierarchy",
    "separation_profile",
    "hierarchy_collapses",
]

Checker = Union[ModelChecker, ViewBasedInterpretation]


@dataclass(frozen=True)
class HierarchyLevel:
    """One level of the hierarchy: its name and the corresponding formula."""

    name: str
    formula: Formula


def hierarchy_formulas(group: GroupLike, fact: Formula, max_e_level: int = 3) -> List[HierarchyLevel]:
    """The hierarchy instances for ``fact``, strongest first.

    ``C``, then ``E^k`` down to ``E^1``, then ``S``, ``D`` and the fact itself.
    """
    g = as_group(group)
    levels: List[HierarchyLevel] = [HierarchyLevel("C", C(g, fact))]
    for k in range(max_e_level, 0, -1):
        levels.append(HierarchyLevel(f"E^{k}", E(g, fact, k)))
    levels.append(HierarchyLevel("S", S(g, fact)))
    levels.append(HierarchyLevel("D", D(g, fact)))
    levels.append(HierarchyLevel("fact", fact))
    return levels


@dataclass
class HierarchyReport:
    """The extensions of every hierarchy level plus the verdicts of interest."""

    levels: List[HierarchyLevel]
    extension_sizes: Dict[str, int]
    inclusions_hold: bool
    strict_levels: List[Tuple[str, str]]
    """Adjacent pairs (stronger, weaker) whose extensions differ — i.e. where the
    hierarchy is strict on this model."""


def check_hierarchy(
    checker: Checker, group: GroupLike, fact: Formula, max_e_level: int = 3
) -> HierarchyReport:
    """Evaluate the hierarchy for ``fact`` on a model and report inclusions/strictness.

    Works for both back-ends: a Kripke :class:`~repro.kripke.checker.ModelChecker`
    or a runs-and-systems
    :class:`~repro.systems.interpretation.ViewBasedInterpretation`.
    """
    levels = hierarchy_formulas(group, fact, max_e_level)
    extensions = {level.name: checker.extension(level.formula) for level in levels}
    inclusions = True
    strict: List[Tuple[str, str]] = []
    for stronger, weaker in zip(levels, levels[1:]):
        stronger_ext = extensions[stronger.name]
        weaker_ext = extensions[weaker.name]
        if not stronger_ext <= weaker_ext:
            inclusions = False
        if stronger_ext != weaker_ext:
            strict.append((stronger.name, weaker.name))
    return HierarchyReport(
        levels=levels,
        extension_sizes={name: len(ext) for name, ext in extensions.items()},
        inclusions_hold=inclusions,
        strict_levels=strict,
    )


def separation_profile(
    checker: Checker, group: GroupLike, fact: Formula, world, max_e_level: int = 6
) -> Dict[str, bool]:
    """Which hierarchy levels hold at one particular world/point.

    This is the query behind the muddy-children analysis: with ``k`` muddy children,
    ``E^{k-1} m`` holds at the actual world but ``E^k m`` does not.
    """
    results: Dict[str, bool] = {}
    for level in hierarchy_formulas(group, fact, max_e_level):
        extension = checker.extension(level.formula)
        results[level.name] = world in extension
    return results


def hierarchy_collapses(
    checker: Checker, group: GroupLike, fact: Formula, max_e_level: int = 3
) -> bool:
    """Whether all levels from ``D`` up to ``C`` have the same extension for ``fact``.

    True for the shared-memory model of Section 3 and for the single-view
    interpretation of Section 6; false for genuinely distributed models.
    """
    report = check_hierarchy(checker, group, fact, max_e_level)
    sizes = {
        name: size
        for name, size in report.extension_sizes.items()
        if name != "fact"
    }
    return len(set(sizes.values())) == 1
