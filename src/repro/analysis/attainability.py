"""Attainability of common knowledge and its variants (Sections 8, 11; Appendix B).

Each of the paper's attainability theorems becomes an executable check over a finite
system.  The checks are universally quantified over the system's points, so on the
finite instance they constitute a proof of the theorem's statement for that instance:

* :func:`verify_theorem5` — in a system where communication is not guaranteed,
  ``C_G phi`` holds at ``(r, t)`` iff it holds at ``(r-, t)`` for a delivery-free run
  ``r-`` with the same initial configuration and clock readings (Theorems 5 and 7).
* :func:`verify_theorem9` — if ``C^eps_G phi`` (or ``C^<>_G phi``) never holds in the
  delivery-free run, it holds nowhere (Theorem 9; also the engine behind
  Proposition 10's "no eventually-coordinated attack").
* :func:`verify_theorem11` — asynchronous channels do not yield ``C^eps``.
* :func:`initial_point_reachable` / :func:`verify_proposition13` — if ``(r, 0)`` is
  G-reachable from ``(r, t)``, then ``C_G phi`` at ``(r, t)`` iff at ``(r, 0)``.
* :func:`verify_theorem8` — in a system with temporal imprecision, no new common
  knowledge is ever attained (via Lemma 14 + Proposition 13).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.logic.agents import GroupLike, as_group
from repro.logic.syntax import CDiamond, CEps, Common, Formula
from repro.systems.interpretation import ViewBasedInterpretation
from repro.systems.runs import Point, Run
from repro.systems.system import System

__all__ = [
    "TheoremReport",
    "matching_silent_run",
    "verify_theorem5",
    "verify_theorem9",
    "verify_theorem11",
    "initial_point_reachable",
    "verify_proposition13",
    "verify_theorem8",
]


@dataclass
class TheoremReport:
    """The outcome of verifying one theorem on one concrete system."""

    theorem: str
    holds: bool
    checked_points: int = 0
    counterexamples: List[str] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.holds


def matching_silent_run(system: System, run: Run) -> Optional[Run]:
    """A run with the same initial configuration and clock readings as ``run`` in
    which no messages are received (the ``r-`` of Theorems 5, 7, 9, 11)."""
    for candidate in system.runs_with_no_deliveries():
        if candidate.same_initial_configuration(run) and candidate.same_clock_readings(run):
            return candidate
    return None


def verify_theorem5(
    interpretation: ViewBasedInterpretation,
    group: GroupLike,
    fact: Formula,
    limit: int = 5,
) -> TheoremReport:
    """Theorem 5 / Theorem 7: common knowledge is insensitive to message deliveries.

    For every run ``r`` with a matching delivery-free run ``r-``, and every time
    ``t``, ``C_G fact`` holds at ``(r, t)`` iff it holds at ``(r-, t)``.
    """
    system = interpretation.system
    claim = Common(as_group(group), fact)
    extension = interpretation.extension(claim)
    report = TheoremReport("Theorem 5/7", holds=True)
    for run in system.runs:
        silent = matching_silent_run(system, run)
        if silent is None:
            continue
        horizon = min(run.duration, silent.duration)
        for time in range(horizon + 1):
            report.checked_points += 1
            in_run = Point(run, time) in extension
            in_silent = Point(silent, time) in extension
            if in_run != in_silent:
                report.holds = False
                if len(report.counterexamples) < limit:
                    report.counterexamples.append(
                        f"C differs between ({run.name},{time}) and ({silent.name},{time})"
                    )
    return report


def verify_theorem9(
    interpretation: ViewBasedInterpretation,
    group: GroupLike,
    fact: Formula,
    eps: Optional[int] = None,
    limit: int = 5,
) -> TheoremReport:
    """Theorem 9: if the variant common knowledge never holds in the delivery-free
    run, it never holds in any run with the same initial configuration and clocks.

    ``eps=None`` checks the eventual variant ``C^<>``; otherwise ``C^eps``.
    """
    system = interpretation.system
    g = as_group(group)
    claim = CDiamond(g, fact) if eps is None else CEps(g, fact, eps)
    extension = interpretation.extension(claim)
    name = "Theorem 9 (C<>)" if eps is None else f"Theorem 9 (C^{eps})"
    report = TheoremReport(name, holds=True)
    for run in system.runs:
        silent = matching_silent_run(system, run)
        if silent is None:
            continue
        holds_in_silent = any(
            Point(silent, time) in extension for time in silent.times()
        )
        if holds_in_silent:
            continue  # the theorem's hypothesis fails for this run; nothing to check
        for time in run.times():
            report.checked_points += 1
            if Point(run, time) in extension:
                report.holds = False
                if len(report.counterexamples) < limit:
                    report.counterexamples.append(
                        f"{claim!r} holds at ({run.name},{time}) although never in {silent.name}"
                    )
    return report


def verify_theorem11(
    interpretation: ViewBasedInterpretation,
    group: GroupLike,
    fact: Formula,
    eps: int,
    limit: int = 5,
) -> TheoremReport:
    """Theorem 11: with unbounded delivery times, ``C^eps`` is not attained in any run
    whose delivery-free counterpart (silent through time ``t + eps``) does not attain
    it."""
    system = interpretation.system
    g = as_group(group)
    claim = CEps(g, fact, eps)
    extension = interpretation.extension(claim)
    report = TheoremReport(f"Theorem 11 (C^{eps})", holds=True)
    for run in system.runs:
        silent = matching_silent_run(system, run)
        if silent is None:
            continue
        for time in range(min(run.duration, silent.duration) + 1):
            if Point(silent, time) in extension:
                continue
            report.checked_points += 1
            if Point(run, time) in extension:
                report.holds = False
                if len(report.counterexamples) < limit:
                    report.counterexamples.append(
                        f"C^{eps} holds at ({run.name},{time}) but not at ({silent.name},{time})"
                    )
    return report


def initial_point_reachable(
    interpretation: ViewBasedInterpretation, group: GroupLike, run: Run, time: int
) -> bool:
    """Whether ``(r, 0)`` is G-reachable from ``(r, t)`` in the indistinguishability
    graph (the hypothesis of Proposition 13, established by Lemma 14 for systems with
    temporal imprecision)."""
    reachable = interpretation.reachable(as_group(group), Point(run, time))
    return Point(run, 0) in reachable


def verify_proposition13(
    interpretation: ViewBasedInterpretation,
    group: GroupLike,
    fact: Formula,
    limit: int = 5,
) -> TheoremReport:
    """Proposition 13: wherever ``(r, 0)`` is G-reachable from ``(r, t)``,
    ``C_G fact`` holds at ``(r, t)`` iff it holds at ``(r, 0)``."""
    g = as_group(group)
    claim = Common(g, fact)
    extension = interpretation.extension(claim)
    report = TheoremReport("Proposition 13", holds=True)
    for run in interpretation.system.runs:
        at_zero = Point(run, 0) in extension
        for time in run.times():
            if not initial_point_reachable(interpretation, g, run, time):
                continue
            report.checked_points += 1
            if (Point(run, time) in extension) != at_zero:
                report.holds = False
                if len(report.counterexamples) < limit:
                    report.counterexamples.append(
                        f"C changes between ({run.name},0) and ({run.name},{time})"
                    )
    return report


def verify_theorem8(
    interpretation: ViewBasedInterpretation,
    group: GroupLike,
    fact: Formula,
    limit: int = 5,
) -> TheoremReport:
    """Theorem 8: in a system with temporal imprecision, ``C_G fact`` at ``(r, t)``
    iff ``C_G fact`` at ``(r, 0)`` — no new common knowledge is ever attained.

    The paper's route is: temporal imprecision ``=>`` (Lemma 14) the initial point is
    G-reachable from every point ``=>`` (Proposition 13) common knowledge never
    changes along a run.  The continuous-time imprecision condition involves
    arbitrarily small shifts and therefore has no faithful *exact* finite analogue
    (the strict grid-shift check of
    :func:`repro.systems.conditions.has_temporal_imprecision` fails at the parameter
    boundaries of any finite system), so this verifier checks Lemma 14's conclusion —
    reachability of the initial point — as its hypothesis, and then the theorem's
    conclusion at every point.  Runs whose initial point is not reachable from some
    point are reported as hypothesis failures.
    """
    system = interpretation.system
    g = as_group(group)
    report = TheoremReport("Theorem 8", holds=True)
    claim = Common(g, fact)
    extension = interpretation.extension(claim)
    for run in system.runs:
        at_zero = Point(run, 0) in extension
        for time in run.times():
            if not initial_point_reachable(interpretation, g, run, time):
                report.holds = False
                if len(report.counterexamples) < limit:
                    report.counterexamples.append(
                        f"hypothesis fails: ({run.name},0) not reachable from "
                        f"({run.name},{time})"
                    )
                continue
            report.checked_points += 1
            if (Point(run, time) in extension) != at_zero:
                report.holds = False
                if len(report.counterexamples) < limit:
                    report.counterexamples.append(
                        f"C changes between ({run.name},0) and ({run.name},{time})"
                    )
    return report
