"""Coordination and knowledge (Sections 7, 9, 11, 12).

The paper's central theme is the correspondence between *kinds of coordination* and
*states of group knowledge*:

=============================  =========================================
simultaneous actions           common knowledge ``C``
actions within eps of another  eps-common knowledge ``C^eps``
eventually-performed actions   eventual common knowledge ``C^<>``
actions at local clock time T  timestamped common knowledge ``C^T``
=============================  =========================================

This module measures both sides of the correspondence on a concrete system: when and
how tightly a named internal action is coordinated across a group, and whether the
corresponding knowledge state holds when the action is performed.  Experiments E3, E7
and E9 use these helpers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.logic.agents import GroupLike, as_group
from repro.logic.syntax import CDiamond, CEps, Common, CT, Formula
from repro.systems.interpretation import ViewBasedInterpretation
from repro.systems.runs import Point, Run
from repro.systems.system import System

__all__ = [
    "ActionCoordination",
    "action_coordination",
    "coordination_spread",
    "knowledge_when_acting",
    "simultaneous_action_implies_common_knowledge",
]


@dataclass
class ActionCoordination:
    """When each member of a group performs a named action in one run."""

    run: Run
    action: str
    times: Dict[object, Optional[int]]

    @property
    def performed_by_all(self) -> bool:
        """Whether every member performs the action at some time in the run."""
        return all(time is not None for time in self.times.values())

    @property
    def performed_by_some(self) -> bool:
        """Whether at least one member performs the action."""
        return any(time is not None for time in self.times.values())

    @property
    def simultaneous(self) -> bool:
        """Whether all members perform the action at the same time."""
        return self.performed_by_all and len(set(self.times.values())) == 1

    @property
    def spread(self) -> Optional[int]:
        """The gap between the first and the last performer (``None`` if not all act)."""
        if not self.performed_by_all:
            return None
        values = [t for t in self.times.values() if t is not None]
        return max(values) - min(values)


def action_coordination(run: Run, group: GroupLike, action: str) -> ActionCoordination:
    """When each member of ``group`` performs ``action`` in ``run``."""
    members = as_group(group).sorted_members()
    return ActionCoordination(
        run=run,
        action=action,
        times={member: run.action_time(member, action) for member in members},
    )


def coordination_spread(system: System, group: GroupLike, action: str) -> Optional[int]:
    """The worst-case spread of ``action`` across the runs where everyone performs it
    (``None`` when there is no such run)."""
    spreads = [
        coordination.spread
        for run in system.runs
        for coordination in [action_coordination(run, group, action)]
        if coordination.performed_by_all
    ]
    return max(spreads) if spreads else None


def knowledge_when_acting(
    interpretation: ViewBasedInterpretation,
    group: GroupLike,
    action: str,
    fact: Formula,
    eps: Optional[int] = None,
    timestamp: Optional[float] = None,
) -> Dict[str, bool]:
    """Which knowledge states hold whenever some member of the group acts.

    For every point at which some member of ``group`` performs ``action``, check
    whether ``C fact``, ``C^eps fact`` (if ``eps`` given), ``C^<> fact`` and
    ``C^T fact`` (if ``timestamp`` given) hold; the result maps each knowledge state
    to "holds at *every* acting point".
    """
    g = as_group(group)
    claims: Dict[str, Formula] = {"C": Common(g, fact), "C<>": CDiamond(g, fact)}
    if eps is not None:
        claims[f"C^{eps}"] = CEps(g, fact, eps)
    if timestamp is not None:
        claims[f"C^T={timestamp}"] = CT(g, fact, timestamp)
    extensions = {name: interpretation.extension(claim) for name, claim in claims.items()}

    acting_points: List[Point] = []
    for run in interpretation.system.runs:
        for member in g:
            time = run.action_time(member, action)
            if time is not None:
                acting_points.append(Point(run, time))

    verdicts: Dict[str, bool] = {}
    for name, extension in extensions.items():
        verdicts[name] = all(point in extension for point in acting_points) and bool(
            acting_points
        )
    return verdicts


def simultaneous_action_implies_common_knowledge(
    interpretation: ViewBasedInterpretation,
    group: GroupLike,
    action: str,
    fact: Formula,
) -> bool:
    """Proposition 4, generalised: if in every run of the system the members of
    ``group`` perform ``action`` only simultaneously (or not at all), then at every
    point where they act, ``fact`` (which must hold exactly when they act) is common
    knowledge.

    Returns ``True`` when the implication holds on this system.  The caller is
    responsible for passing a fact whose valuation is "the group is acting now".
    """
    g = as_group(group)
    claim = Common(g, fact)
    extension = interpretation.extension(claim)
    for run in interpretation.system.runs:
        coordination = action_coordination(run, g, action)
        if not coordination.performed_by_some:
            continue
        if not coordination.simultaneous:
            # The hypothesis (a correct simultaneous-action protocol) fails; the
            # implication is vacuous for this system.
            continue
        acting_time = next(iter(coordination.times.values()))
        if Point(run, acting_time) not in extension:
            return False
    return True
