"""The asyncio HTTP transport of the evaluation service.

``repro serve`` boots one :class:`ServeApp`: a stdlib-only HTTP/1.1 server
(:func:`asyncio.start_server`, hand-rolled request framing — the container
deliberately has no web framework) in front of the handlers in
:mod:`repro.serve.handlers`.  What makes it worth serving at all is what
stays resident between requests: the scenario registry, one
:class:`~repro.experiments.runner.ExperimentRunner` whose instance and
evaluator caches survive across requests, and (optionally) an open
:class:`~repro.experiments.store.ResultStore` — so a warm repeated request
costs a cache lookup instead of an interpreter boot, imports, and a model
build.

Framing rules:

- JSON endpoints answer with ``Content-Length`` and keep the connection
  alive (HTTP/1.1 default), so load drivers can reuse connections.
- ``POST /sweep`` streams NDJSON with ``Connection: close`` — end of body
  is end of stream — and every line is written (and drained) atomically,
  so a shutdown or disconnect truncates between lines, never inside one.

Model checks run on a thread pool; the event loop only parses, validates,
coalesces and frames, so ``/healthz`` keeps answering while sweeps stream.
"""

from __future__ import annotations

import asyncio
import json
import signal
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, Optional, Set, Tuple

from repro.errors import ReproError, StoreError
from repro.experiments.runner import ExperimentRunner
from repro.serve import handlers
from repro.serve.handlers import ServeState
from repro.serve.schema import ServeRequestError

__all__ = ["ServeApp", "ServerThread", "run_server"]

_MAX_HEADER_LINE = 16 * 1024
_MAX_HEADERS = 100
_MAX_BODY = 16 * 1024 * 1024


class _HttpError(Exception):
    """A transport-level refusal (bad framing, bad route, bad method)."""

    def __init__(self, status: int, message: str, error_type: str = "http_error"):
        super().__init__(message)
        self.status = status
        self.error_type = error_type


_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


def _response_head(
    status: int, content_type: str, extra: Tuple[str, ...] = ()
) -> bytes:
    reason = _REASONS.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {reason}", f"Content-Type: {content_type}"]
    lines.extend(extra)
    return ("\r\n".join(lines) + "\r\n").encode("ascii")


class ServeApp:
    """One long-lived evaluation service instance.

    ``await start()`` binds the socket (``port=0`` picks an ephemeral port,
    readable from :attr:`port` afterwards), ``await stop()`` shuts down
    gracefully: no new connections, in-flight sweep producers are told to
    stop at the next line boundary, the executor drains, the store closes.

    The constructor builds nothing; the runner, executor and (optional)
    store come to life in :meth:`start` so a constructed-but-never-started
    app owns no resources.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        store_path: Optional[str] = None,
        max_workers: Optional[int] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.store_path = store_path
        self.max_workers = max_workers
        self.state: Optional[ServeState] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: Set["asyncio.Task[None]"] = set()
        self._store = None

    async def start(self) -> None:
        """Open the store, build the resident state, bind the socket."""
        if self.store_path is not None:
            from repro.experiments.store import ResultStore

            self._store = ResultStore(self.store_path)
        runner = ExperimentRunner(store=self._store, resume=self._store is not None)
        executor = ThreadPoolExecutor(
            max_workers=self.max_workers, thread_name_prefix="repro-serve"
        )
        self.state = ServeState(runner=runner, executor=executor)
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Graceful shutdown: close the listener, stop streams, drain, close."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self.state is not None:
            # Sweep producers check this between grid points; the NDJSON
            # streams they feed end at a line boundary without a trailer.
            self.state.shutdown.set()
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        if self.state is not None:
            # In-flight evaluations are not interruptible; wait them out so
            # the store is still open when they try to persist.
            await asyncio.get_running_loop().run_in_executor(
                None, lambda: self.state.executor.shutdown(wait=True, cancel_futures=True)
            )
        if self._store is not None:
            self._store.close()
            self._store = None

    async def serve_forever(self) -> None:
        """Block until the server task is cancelled (then stop gracefully)."""
        assert self._server is not None, "call start() first"
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            raise
        finally:
            await self.stop()

    # -- connection handling ---------------------------------------------------

    def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.ensure_future(self._serve_connection(reader, writer))
        self._connections.add(task)
        task.add_done_callback(self._connections.discard)

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except _HttpError as error:
                    await self._write_json(
                        writer,
                        error.status,
                        {
                            "error": {
                                "type": error.error_type,
                                "message": str(error),
                            }
                        },
                        keep_alive=False,
                    )
                    return
                if request is None:
                    return
                method, path, headers, body = request
                keep_alive = headers.get("connection", "").lower() != "close"
                done = await self._dispatch(
                    writer, method, path, body, keep_alive
                )
                if not done or not keep_alive:
                    return
        except (asyncio.CancelledError, ConnectionError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
        """Parse one request; ``None`` on clean EOF between requests."""
        try:
            line = await reader.readline()
        except (ConnectionError, asyncio.LimitOverrunError):
            return None
        if not line:
            return None
        if len(line) > _MAX_HEADER_LINE:
            raise _HttpError(400, "request line too long")
        parts = line.decode("latin-1").strip().split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/1"):
            raise _HttpError(400, f"malformed request line {line!r}")
        method, path, _version = parts
        headers: Dict[str, str] = {}
        for _ in range(_MAX_HEADERS):
            line = await reader.readline()
            if not line:
                raise _HttpError(400, "connection closed inside headers")
            if line in (b"\r\n", b"\n"):
                break
            if len(line) > _MAX_HEADER_LINE:
                raise _HttpError(400, "header line too long")
            name, sep, value = line.decode("latin-1").partition(":")
            if not sep:
                raise _HttpError(400, f"malformed header line {line!r}")
            headers[name.strip().lower()] = value.strip()
        else:
            raise _HttpError(400, "too many headers")
        body = b""
        length_text = headers.get("content-length")
        if length_text is not None:
            try:
                length = int(length_text)
            except ValueError:
                raise _HttpError(400, f"bad Content-Length {length_text!r}") from None
            if length < 0:
                raise _HttpError(400, f"bad Content-Length {length_text!r}")
            if length > _MAX_BODY:
                raise _HttpError(413, f"request body over {_MAX_BODY} bytes")
            body = await reader.readexactly(length)
        return method, path, headers, body

    # -- routing ---------------------------------------------------------------

    async def _dispatch(
        self,
        writer: asyncio.StreamWriter,
        method: str,
        path: str,
        body: bytes,
        keep_alive: bool,
    ) -> bool:
        """Route one request.  Returns False when the connection must close."""
        state = self.state
        assert state is not None
        state.requests += 1
        path = path.split("?", 1)[0]
        try:
            if method == "GET" and path == "/healthz":
                payload: object = handlers.handle_healthz(state)
            elif method == "GET" and path == "/stats":
                payload = handlers.handle_stats(state)
            elif method == "GET" and path == "/scenarios":
                payload = handlers.handle_scenarios(state)
            elif method == "GET" and path.startswith("/scenarios/"):
                payload = handlers.handle_scenario_detail(
                    state, path[len("/scenarios/"):]
                )
            elif method == "POST" and path == "/run":
                payload = await handlers.handle_run(state, _parse_body(body))
            elif method == "POST" and path == "/sweep":
                _request, lines = await handlers.sweep_lines(
                    state, _parse_body(body)
                )
                await self._write_ndjson(writer, lines)
                return False
            elif path in ("/run", "/sweep", "/healthz", "/stats", "/scenarios"):
                raise _HttpError(
                    405, f"{method} not allowed on {path}", "method_not_allowed"
                )
            else:
                raise _HttpError(404, f"no route for {path}", "not_found")
        except ServeRequestError as error:
            await self._write_json(
                writer, error.status, error.payload, keep_alive=keep_alive
            )
            return True
        except _HttpError as error:
            await self._write_json(
                writer,
                error.status,
                {"error": {"type": error.error_type, "message": str(error)}},
                keep_alive=keep_alive,
            )
            return True
        except (ReproError, StoreError) as error:
            await self._write_json(
                writer,
                500,
                {
                    "error": {
                        "type": "evaluation_failed",
                        "message": str(error),
                    }
                },
                keep_alive=keep_alive,
            )
            return True
        await self._write_json(writer, 200, payload, keep_alive=keep_alive)
        return True

    # -- response writing ------------------------------------------------------

    async def _write_json(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: object,
        keep_alive: bool,
    ) -> None:
        body = (json.dumps(payload, indent=2) + "\n").encode("utf-8")
        extra = [f"Content-Length: {len(body)}"]
        if not keep_alive:
            extra.append("Connection: close")
        head = _response_head(status, "application/json", tuple(extra))
        writer.write(head + b"\r\n" + body)
        await writer.drain()

    async def _write_ndjson(self, writer, lines) -> None:
        """Stream an NDJSON body; one write+drain per line, then close.

        No ``Content-Length`` — ``Connection: close`` frames the body — and
        each line goes out in a single write so a truncation (client gone,
        shutdown) lands between lines, keeping every received line parseable.
        """
        head = _response_head(
            200, "application/x-ndjson", ("Connection: close",)
        )
        writer.write(head + b"\r\n")
        await writer.drain()
        async for line in lines:
            writer.write(line.encode("utf-8"))
            await writer.drain()


def _parse_body(body: bytes) -> object:
    try:
        return json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ServeRequestError(f"request body is not valid JSON: {error}") from None


def _raise_keyboard_interrupt(signum, frame):
    raise KeyboardInterrupt


def _install_signal_handlers() -> None:
    # Non-interactive shells launch `cmd &` background jobs with SIGINT set
    # to SIG_IGN, and Python then leaves it ignored — `kill -INT` would never
    # reach the loop and the server could only be killed.  Restore the default
    # handler when (and only when) the inherited disposition is "ignore", and
    # route SIGTERM through the same graceful KeyboardInterrupt path so
    # service managers' stop signal also drains in-flight work.
    if threading.current_thread() is not threading.main_thread():
        return
    if signal.getsignal(signal.SIGINT) is signal.SIG_IGN:
        signal.signal(signal.SIGINT, signal.default_int_handler)
    signal.signal(signal.SIGTERM, _raise_keyboard_interrupt)


def run_server(
    host: str = "127.0.0.1",
    port: int = 8750,
    store_path: Optional[str] = None,
    max_workers: Optional[int] = None,
    ready_message: bool = True,
) -> None:
    """Run the service in the foreground until interrupted (``repro serve``).

    Boots a fresh event loop, prints the bound address (ephemeral ports
    resolve here), and blocks.  Ctrl-C — or ``SIGINT``/``SIGTERM`` from a
    supervisor; both are handled even when the process was launched as a
    shell background job with SIGINT inherited ignored — performs a graceful
    :meth:`ServeApp.stop` — streams end at line boundaries, the store closes
    — and then re-raises :class:`KeyboardInterrupt` so the CLI keeps its
    documented exit code 130.
    """
    _install_signal_handlers()

    async def _main() -> None:
        app = ServeApp(
            host=host, port=port, store_path=store_path, max_workers=max_workers
        )
        await app.start()
        if ready_message:
            print(f"repro serve: listening on http://{app.host}:{app.port}", flush=True)
        try:
            await app.serve_forever()
        finally:
            await app.stop()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        raise


class ServerThread:
    """A running service on a background thread, for tests and benchmarks.

    The container has no async test plugin, so tests drive the server with
    plain :mod:`http.client` from the main thread while this helper owns the
    event loop::

        with ServerThread(store_path=path) as server:
            conn = http.client.HTTPConnection("127.0.0.1", server.port)

    Entering starts the loop and blocks until the socket is bound (or the
    startup error re-raises in the caller); exiting schedules a graceful
    stop and joins the thread.  :attr:`app` exposes the live
    :class:`ServeApp` (and through it the resident runner) for assertions.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        store_path: Optional[str] = None,
        max_workers: Optional[int] = None,
    ) -> None:
        self.app = ServeApp(
            host=host, port=port, store_path=store_path, max_workers=max_workers
        )
        self._ready = threading.Event()
        self._error: Optional[BaseException] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._thread = threading.Thread(
            target=self._run, name="repro-serve-loop", daemon=True
        )

    @property
    def port(self) -> int:
        """The bound port (ephemeral ports are resolved once started)."""
        return self.app.port

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as error:  # surface startup/shutdown failures
            self._error = error
        finally:
            self._ready.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        await self.app.start()
        self._ready.set()
        await self._stop.wait()
        await self.app.stop()

    def start(self) -> "ServerThread":
        """Start the loop thread and wait for the socket to be bound."""
        self._thread.start()
        self._ready.wait(timeout=30)
        if self._error is not None:
            raise self._error
        if not self._ready.is_set():
            raise RuntimeError("server thread failed to start within 30s")
        return self

    def stop(self) -> None:
        """Request a graceful stop and join the loop thread."""
        if self._loop is not None and self._stop is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop.set)
            except RuntimeError:
                pass  # loop already closed (startup failure path)
        self._thread.join(timeout=30)
        if self._error is not None:
            raise self._error

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.stop()
