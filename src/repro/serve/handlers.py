"""Endpoint implementations for the evaluation service.

Each handler is a plain function over :class:`ServeState` — the resident
runner, executor, coalescing map and counters — returning JSON-ready
payloads (or, for sweeps, an async iterator of NDJSON lines).  The HTTP
framing lives in :mod:`repro.serve.app`; nothing here reads sockets.

The payload shapes deliberately mirror the CLI's ``--json`` renderings:
``GET /scenarios`` is ``repro list --json``, ``GET /scenarios/<name>`` is
``repro describe --json``, ``POST /run`` is ``repro run --json``, and every
``POST /sweep`` NDJSON row parses to exactly the element ``repro sweep
--json`` would print for that grid point.
"""

from __future__ import annotations

import asyncio
import json
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import AsyncIterator, Dict, List, Optional, Tuple

from repro.errors import ReproError
from repro.experiments.registry import all_scenarios, get_scenario
from repro.experiments.runner import ExperimentRunner
from repro.serve.coalesce import CoalescingMap
from repro.serve.schema import (
    RunRequest,
    ServeRequestError,
    SweepRequest,
    parse_run_request,
    parse_sweep_request,
)

__all__ = [
    "ServeState",
    "handle_healthz",
    "handle_stats",
    "handle_scenarios",
    "handle_scenario_detail",
    "handle_run",
    "sweep_lines",
]


@dataclass
class ServeState:
    """Everything the service keeps resident across requests.

    One :class:`~repro.experiments.runner.ExperimentRunner` (its instance
    and evaluator caches are the whole point of serving), one executor the
    model checks run on so the event loop stays responsive, one
    :class:`~repro.serve.coalesce.CoalescingMap`, and request counters.
    """

    runner: ExperimentRunner
    executor: ThreadPoolExecutor
    coalescer: CoalescingMap = field(default_factory=CoalescingMap)
    requests: int = 0
    """Total requests routed (any endpoint, any outcome)."""
    sweeps_streamed: int = 0
    """How many ``POST /sweep`` streams were opened."""
    shutdown: threading.Event = field(default_factory=threading.Event)
    """Set once at graceful shutdown; in-flight sweep producers notice it
    between grid points and stop at a line boundary."""


def handle_healthz(state: ServeState) -> Dict[str, object]:
    """``GET /healthz`` — liveness, answered without touching the executor."""
    return {
        "ok": True,
        "scenarios": len(all_scenarios()),
        "store": state.runner.store is not None,
    }


def handle_stats(state: ServeState) -> Dict[str, object]:
    """``GET /stats`` — the counters the coalescing/caching invariants live on.

    ``eval_count`` and ``store_hits`` come straight from the resident
    runner; ``coalesce`` reports leaders (misses), followers (hits) and the
    number of evaluations currently in flight.  The serve tests and the CI
    load driver assert against exactly this payload.
    """
    return {
        "requests": state.requests,
        "sweeps_streamed": state.sweeps_streamed,
        "eval_count": state.runner.eval_count,
        "store_hits": state.runner.store_hits,
        "cached_instances": state.runner.cached_instances,
        "coalesce": {
            "hits": state.coalescer.hits,
            "misses": state.coalescer.misses,
            "inflight": state.coalescer.inflight,
        },
    }


def handle_scenarios(state: ServeState) -> List[Dict[str, object]]:
    """``GET /scenarios`` — the ``repro list --json`` payload."""
    return [
        {
            "name": spec.name,
            "section": spec.section,
            "summary": spec.summary,
            "parameters": [parameter.name for parameter in spec.parameters],
        }
        for spec in all_scenarios()
    ]


def handle_scenario_detail(state: ServeState, name: str) -> Dict[str, object]:
    """``GET /scenarios/<name>`` — the ``repro describe --json`` payload."""
    try:
        spec = get_scenario(name)
    except ReproError as error:
        raise ServeRequestError(
            str(error), status=404, error_type="unknown_scenario"
        ) from None
    defaults = (
        spec.validate_params({})
        if not any(p.required for p in spec.parameters)
        else None
    )
    formulas = spec.default_formulas() if defaults is not None else {}
    return {
        "name": spec.name,
        "section": spec.section,
        "summary": spec.summary,
        "details": spec.details,
        "parameters": [
            {
                "name": parameter.name,
                "type": parameter.type.__name__,
                "required": parameter.required,
                "default": parameter.default,
                "minimum": parameter.minimum,
                "maximum": parameter.maximum,
                "choices": list(parameter.choices) if parameter.choices else None,
                "description": parameter.description,
            }
            for parameter in spec.parameters
        ],
        "default_formulas": {label: str(f) for label, f in formulas.items()},
    }


async def handle_run(state: ServeState, payload: object) -> Dict[str, object]:
    """``POST /run`` — validate, coalesce, evaluate in the executor.

    Validation (parameter coercion, formula normalisation, static
    pre-flight) happens on the event loop — it is cheap and produces 400
    bodies before any executor slot is taken.  The evaluation itself runs
    in the executor under the request's content address: N concurrent
    identical requests share one :meth:`ExperimentRunner.run` call and all
    N receive renderings of the same report.
    """
    request: RunRequest = parse_run_request(payload)
    loop = asyncio.get_running_loop()

    def evaluate() -> Dict[str, object]:
        report = state.runner.run(
            request.scenario,
            request.params,
            formulas=request.formulas,
            backend=request.backend,
            minimize=request.minimize,
        )
        return report.to_dict()

    async def thunk() -> Dict[str, object]:
        return await loop.run_in_executor(state.executor, evaluate)

    return await state.coalescer.run(request.digest, thunk)


def _ndjson(payload: Dict[str, object]) -> str:
    """One NDJSON line: compact JSON plus the terminating newline."""
    return json.dumps(payload, separators=(",", ":")) + "\n"


async def sweep_lines(
    state: ServeState, payload: object
) -> Tuple[SweepRequest, AsyncIterator[str]]:
    """``POST /sweep`` — validate, then stream reports as NDJSON lines.

    Validation (including a pre-flight of every distinct grid point's
    formula batch) runs before the first line, so an invalid sweep is a
    JSON error response, never a broken stream.  The returned iterator
    yields one compact ``report.to_dict()`` line per grid point in
    deterministic grid order — parsing each line gives exactly the element
    ``repro sweep --json`` prints — followed by a
    ``{"sweep_complete": true, "rows": N}`` trailer.  A stream that ends
    without the trailer was truncated (client disconnect, server shutdown,
    or a mid-sweep fault, which appears as a final ``sweep_error`` line).

    The sweep itself runs on one executor thread which feeds the event
    loop through an :class:`asyncio.Queue`; the loop keeps serving other
    requests (and ``/healthz``) while rows stream.  Consumer cancellation
    or shutdown flips a :class:`threading.Event` the producer checks
    between grid points, so the generator underneath ``iter_sweep`` is
    closed promptly and the stream always stops at a line boundary.
    """
    request: SweepRequest = parse_sweep_request(payload)
    loop = asyncio.get_running_loop()
    queue: "asyncio.Queue[Tuple[str, object]]" = asyncio.Queue()
    stop = threading.Event()

    def produce() -> None:
        emitted = 0
        try:
            stream = state.runner.iter_sweep(
                request.scenario,
                request.grid,
                formulas=request.formulas,
                backends=request.backends,
                minimize=request.minimize,
                jobs=request.jobs,
            )
            try:
                for report in stream:
                    if stop.is_set() or state.shutdown.is_set():
                        return
                    loop.call_soon_threadsafe(
                        queue.put_nowait, ("row", report.to_dict())
                    )
                    emitted += 1
            finally:
                stream.close()
        except BaseException as error:  # rendered as a sweep_error line
            loop.call_soon_threadsafe(queue.put_nowait, ("error", error))
        else:
            loop.call_soon_threadsafe(queue.put_nowait, ("done", emitted))

    async def lines() -> AsyncIterator[str]:
        state.sweeps_streamed += 1
        future = loop.run_in_executor(state.executor, produce)
        try:
            while True:
                kind, value = await queue.get()
                if kind == "row":
                    yield _ndjson(value)
                elif kind == "done":
                    yield _ndjson({"sweep_complete": True, "rows": value})
                    return
                else:
                    error = value
                    error_type = (
                        type(error).__name__
                        if isinstance(error, ReproError)
                        else "internal_error"
                    )
                    yield _ndjson(
                        {
                            "sweep_error": {
                                "type": error_type,
                                "message": str(error),
                            }
                        }
                    )
                    return
        finally:
            stop.set()
            future.cancel()

    return request, lines()
