"""The ``repro serve`` evaluation service.

A long-lived asyncio JSON-over-HTTP server that keeps the expensive parts
of the pipeline — the scenario registry, one
:class:`~repro.experiments.runner.ExperimentRunner` with its instance and
evaluator caches, and optionally an open persistent
:class:`~repro.experiments.store.ResultStore` — resident across requests,
so repeated evaluations cost a cache lookup instead of a process boot.

Endpoints (see :mod:`repro.serve.handlers` for payload shapes):

- ``GET /healthz`` — liveness (answered even while sweeps stream)
- ``GET /stats`` — eval/store/coalescing counters
- ``GET /scenarios`` / ``GET /scenarios/<name>`` — the registry, in the
  CLI's ``--json`` renderings
- ``POST /run`` — one evaluation; concurrent identical requests coalesce
  on the store's content address into a single evaluation
- ``POST /sweep`` — a grid sweep streamed as NDJSON, rows byte-compatible
  with ``repro sweep --json`` elements

Use :func:`run_server` for the foreground CLI, :class:`ServerThread` to
host a server from synchronous code (tests, benchmarks, the load driver).
"""

from repro.serve.app import ServeApp, ServerThread, run_server
from repro.serve.coalesce import CoalescingMap
from repro.serve.schema import (
    RunRequest,
    ServeRequestError,
    SweepRequest,
    parse_run_request,
    parse_sweep_request,
    request_digest,
)

__all__ = [
    "ServeApp",
    "ServerThread",
    "run_server",
    "CoalescingMap",
    "RunRequest",
    "SweepRequest",
    "ServeRequestError",
    "parse_run_request",
    "parse_sweep_request",
    "request_digest",
]
