"""In-flight request coalescing for the evaluation service.

The service keys every ``POST /run`` by the persistent store's content
address (scenario, canonical parameter key, pretty-form formula batch,
resolved backend, minimize flag).  When N identical requests arrive while
one of them is still evaluating, the first becomes the *leader* — it owns
the executor call — and the rest *follow* by awaiting the leader's task.
All N responses are rendered from the same report; the runner's
``eval_count`` moves by exactly one.

The map is confined to the event-loop thread (every mutation happens in a
coroutine or a done-callback), so it needs no locks — the threading lives
behind the executor boundary the leader's thunk crosses.
"""

from __future__ import annotations

import asyncio
from typing import Awaitable, Callable, Dict, Optional, TypeVar

__all__ = ["CoalescingMap"]

T = TypeVar("T")


class CoalescingMap:
    """Share one in-flight evaluation among concurrent identical requests.

    :meth:`run` is the whole interface.  ``hits`` counts requests that
    joined an in-flight evaluation, ``misses`` counts requests that led one
    (including requests with no content address, which can never coalesce).
    """

    def __init__(self) -> None:
        self._inflight: Dict[str, "asyncio.Task[object]"] = {}
        self.hits = 0
        self.misses = 0

    @property
    def inflight(self) -> int:
        """How many distinct evaluations are currently in flight."""
        return len(self._inflight)

    async def run(
        self, key: Optional[str], thunk: Callable[[], Awaitable[T]]
    ) -> T:
        """Await ``thunk()``'s result, sharing the call with identical peers.

        The first caller for ``key`` schedules ``thunk()`` as a task; callers
        arriving before that task finishes await the *same* task and receive
        the same result object (or the same raised exception).  ``key=None``
        means "no canonical identity" — the thunk runs privately.

        Awaiting happens through :func:`asyncio.shield`: a follower whose
        connection drops cancels only its own wait, never the shared
        evaluation other clients are still waiting on.  The key is released
        the moment the task settles, so later requests re-evaluate (or hit
        the persistent store) instead of receiving a stale task.
        """
        if key is None:
            self.misses += 1
            return await thunk()
        task = self._inflight.get(key)
        if task is None:
            self.misses += 1
            task = asyncio.ensure_future(thunk())
            self._inflight[key] = task
            task.add_done_callback(lambda _done: self._inflight.pop(key, None))
        else:
            self.hits += 1
        return await asyncio.shield(task)
