"""Request validation for the evaluation service.

Every ``POST`` body the server accepts is validated *before* any model is
built or an executor slot is taken, through exactly the code paths the CLI
uses: parameters coerce via :meth:`repro.experiments.registry.Parameter.coerce`
(so a JSON ``4.0`` and a CLI ``-p n=4`` canonicalise to the same value — and
the same store key), formulas normalise via
:meth:`~repro.experiments.runner.ExperimentRunner.normalise_formulas`, and the
batch runs through the :mod:`repro.logic.check` pre-flight (structured
``REPxxx`` diagnostics travel back in the error body).

Validation failures raise :class:`ServeRequestError`, which carries the HTTP
status and a JSON-ready payload; the transport layer never has to interpret
library exceptions itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.engine import resolve_backend_name
from repro.errors import (
    CheckError,
    FormulaError,
    ReproError,
    ScenarioError,
)
from repro.experiments.registry import (
    ScenarioSpec,
    get_scenario,
    params_to_key,
    scenario_names,
)
from repro.experiments.runner import ExperimentRunner
from repro.logic.syntax import Formula

__all__ = [
    "ServeRequestError",
    "RunRequest",
    "SweepRequest",
    "parse_run_request",
    "parse_sweep_request",
    "request_digest",
]

_BACKEND_CHOICES = ("frozenset", "bitset")


class ServeRequestError(ReproError):
    """A request body the service refuses, with its HTTP rendering attached.

    ``status`` is the HTTP status code (400 for malformed/invalid requests,
    404 for unknown scenarios); ``payload`` is the JSON-ready error body —
    always ``{"error": {"type", "message", ...}}``, with a ``diagnostics``
    list of structured ``REPxxx`` records when the static checker produced
    them.
    """

    def __init__(
        self,
        message: str,
        status: int = 400,
        error_type: str = "invalid_request",
        diagnostics: Optional[List[Dict[str, object]]] = None,
    ):
        super().__init__(message)
        self.status = status
        self.error_type = error_type
        self.diagnostics = diagnostics

    @property
    def payload(self) -> Dict[str, object]:
        """The JSON body the transport writes for this error."""
        error: Dict[str, object] = {
            "type": self.error_type,
            "message": str(self),
        }
        if self.diagnostics is not None:
            error["diagnostics"] = self.diagnostics
        return {"error": error}


def _reject(error: ReproError) -> ServeRequestError:
    """Translate a library exception into its HTTP rendering.

    Unknown scenarios are 404 (the resource does not exist); every other
    :class:`ScenarioError`/:class:`FormulaError` is a 400 whose body carries
    the library's message verbatim — and, for :class:`CheckError`, the full
    structured diagnostic list.
    """
    if isinstance(error, CheckError):
        return ServeRequestError(
            str(error),
            status=400,
            error_type="check_failed",
            diagnostics=[d.to_dict() for d in error.diagnostics],
        )
    message = str(error)
    if isinstance(error, ScenarioError) and message.startswith("unknown scenario"):
        return ServeRequestError(message, status=404, error_type="unknown_scenario")
    return ServeRequestError(message, status=400, error_type="invalid_request")


def _require_object(payload: object) -> Mapping[str, object]:
    if not isinstance(payload, Mapping):
        raise ServeRequestError(
            f"request body must be a JSON object, got {type(payload).__name__}"
        )
    return payload


def _check_fields(payload: Mapping[str, object], allowed: Sequence[str]) -> None:
    unknown = sorted(set(payload) - set(allowed))
    if unknown:
        raise ServeRequestError(
            f"unknown request field(s) {unknown}; allowed fields: {sorted(allowed)}"
        )


def _get_scenario(payload: Mapping[str, object]) -> ScenarioSpec:
    name = payload.get("scenario")
    if not isinstance(name, str) or not name:
        raise ServeRequestError(
            "request needs a 'scenario' string; registered scenarios: "
            f"{list(scenario_names())}"
        )
    try:
        return get_scenario(name)
    except ScenarioError as error:
        raise _reject(error) from None


def _validated_params(
    spec: ScenarioSpec, payload: Mapping[str, object], key: str = "params"
) -> Dict[str, object]:
    params = payload.get(key, {})
    if not isinstance(params, Mapping):
        raise ServeRequestError(
            f"'{key}' must be a JSON object of parameter values, "
            f"got {type(params).__name__}"
        )
    try:
        return spec.validate_params(params)
    except ScenarioError as error:
        raise _reject(error) from None


def _formula_entries(payload: Mapping[str, object]) -> Optional[List[object]]:
    """The raw ``formulas`` list, JSON pairs converted to the runner's tuples."""
    formulas = payload.get("formulas")
    if formulas is None:
        return None
    if not isinstance(formulas, list) or not formulas:
        raise ServeRequestError(
            "'formulas' must be a non-empty JSON array of formula strings "
            "or [label, formula] pairs"
        )
    entries: List[object] = []
    for entry in formulas:
        if isinstance(entry, str):
            entries.append(entry)
        elif (
            isinstance(entry, list)
            and len(entry) == 2
            and all(isinstance(part, str) for part in entry)
        ):
            entries.append((entry[0], entry[1]))
        else:
            raise ServeRequestError(
                f"bad 'formulas' entry {entry!r}: expected a formula string "
                "or a [label, formula] pair of strings"
            )
    return entries


def _normalised_batch(
    entries: Optional[List[object]],
) -> Optional[List[Tuple[str, Formula]]]:
    if entries is None:
        return None
    try:
        return ExperimentRunner.normalise_formulas(entries)
    except ReproError as error:
        raise _reject(error) from None


def _resolved_backend(payload: Mapping[str, object]) -> Optional[str]:
    backend = payload.get("backend")
    if backend is None:
        return None
    if backend not in _BACKEND_CHOICES:
        raise ServeRequestError(
            f"unknown backend {backend!r}; expected one of {_BACKEND_CHOICES}"
        )
    return backend


def _bool_field(payload: Mapping[str, object], name: str) -> bool:
    value = payload.get(name, False)
    if not isinstance(value, bool):
        raise ServeRequestError(
            f"'{name}' must be a JSON boolean, got {value!r}"
        )
    return value


def request_digest(
    scenario: str,
    validated: Mapping[str, object],
    batch: Sequence[Tuple[str, Formula]],
    backend: Optional[str],
    minimize: bool,
) -> Optional[str]:
    """The content address concurrent identical requests coalesce on.

    Exactly the persistent store's canonical identity — scenario name,
    :func:`~repro.experiments.registry.params_to_key` tuple, the pretty-form
    formula batch, the resolved backend and the minimize flag, hashed through
    :class:`~repro.experiments.store.StoreKey` — so an in-flight evaluation
    and a stored row answer the same set of requests.  ``None`` when a
    formula has no canonical text form (such requests simply never coalesce).
    """
    from repro.experiments.store import StoreKey

    try:
        key = StoreKey.for_request(
            scenario,
            params_to_key(validated),
            batch,
            resolve_backend_name(backend),
            minimize,
        )
    except FormulaError:
        return None
    return key.digest


@dataclass(frozen=True)
class RunRequest:
    """One validated ``POST /run`` body, ready for the runner.

    ``params`` is the *validated* assignment (defaults merged, values
    coerced); ``formulas`` is the normalised batch or ``None`` for the
    scenario's defaults; ``digest`` is the coalescing content address (see
    :func:`request_digest`).
    """

    scenario: str
    params: Dict[str, object]
    formulas: Optional[List[Tuple[str, Formula]]]
    backend: Optional[str]
    minimize: bool
    digest: Optional[str]


@dataclass(frozen=True)
class SweepRequest:
    """One validated ``POST /sweep`` body, ready for ``iter_sweep``.

    ``grid`` maps every axis (swept axes plus fixed parameters as
    single-value axes, exactly like the CLI) to its coerced value list;
    ``backends`` is the resolved backend tuple.
    """

    scenario: str
    grid: Dict[str, List[object]]
    formulas: Optional[List[Tuple[str, Formula]]]
    backends: Tuple[str, ...]
    minimize: bool
    jobs: Optional[int]
    point_count: int = field(default=0)


def parse_run_request(payload: object) -> RunRequest:
    """Validate a ``POST /run`` body end to end.

    Runs the same pipeline as ``repro run``: parameter coercion, formula
    normalisation, and the static pre-flight check — a request that fails any
    stage raises :class:`ServeRequestError` before anything is built.
    """
    body = _require_object(payload)
    _check_fields(body, ("scenario", "params", "formulas", "backend", "minimize"))
    spec = _get_scenario(body)
    validated = _validated_params(spec, body)
    batch = _normalised_batch(_formula_entries(body))
    backend = _resolved_backend(body)
    minimize = _bool_field(body, "minimize")
    try:
        resolved_batch = (
            batch
            if batch is not None
            else ExperimentRunner._formula_batch(spec, validated, None)
        )
        ExperimentRunner.preflight_batch(spec, validated, resolved_batch, minimize)
    except ReproError as error:
        raise _reject(error) from None
    return RunRequest(
        scenario=spec.name,
        params=validated,
        formulas=batch,
        backend=backend,
        minimize=minimize,
        digest=request_digest(
            spec.name, validated, resolved_batch, backend, minimize
        ),
    )


def _grid_axes(
    spec: ScenarioSpec, payload: Mapping[str, object]
) -> Dict[str, List[object]]:
    grid = payload.get("grid")
    if not isinstance(grid, Mapping) or not grid:
        raise ServeRequestError(
            "'grid' must be a non-empty JSON object mapping parameter names "
            "to arrays of values"
        )
    axes: Dict[str, List[object]] = {}
    for name, values in grid.items():
        try:
            parameter = spec.parameter(name)
        except ScenarioError as error:
            raise _reject(error) from None
        if not isinstance(values, list) or not values:
            raise ServeRequestError(
                f"grid axis {name!r} must be a non-empty JSON array of values"
            )
        try:
            axes[name] = [parameter.coerce(value) for value in values]
        except ScenarioError as error:
            raise _reject(error) from None
    return axes


def parse_sweep_request(payload: object) -> SweepRequest:
    """Validate a ``POST /sweep`` body end to end.

    Mirrors ``repro sweep``: the swept grid and the fixed parameters merge
    into one full grid (fixed values become single-value axes), backends
    resolve exactly like ``--backends``, and every distinct grid point's
    formula batch is pre-flighted before the response stream starts — an
    invalid batch is a 400 error body, never a broken NDJSON stream.
    """
    body = _require_object(payload)
    _check_fields(
        body,
        ("scenario", "grid", "params", "formulas", "backends", "minimize", "jobs"),
    )
    spec = _get_scenario(body)
    axes = _grid_axes(spec, body)

    fixed = body.get("params", {})
    if not isinstance(fixed, Mapping):
        raise ServeRequestError(
            "'params' must be a JSON object of fixed parameter values, "
            f"got {type(fixed).__name__}"
        )
    for name in fixed:
        if name in axes:
            raise ServeRequestError(
                f"parameter {name!r} is both fixed (params) and swept (grid)"
            )
        try:
            axes[str(name)] = [spec.parameter(str(name)).coerce(fixed[name])]
        except ScenarioError as error:
            raise _reject(error) from None

    batch = _normalised_batch(_formula_entries(body))

    backends_field = body.get("backends", ("frozenset",))
    if backends_field == "both":
        backends: Tuple[str, ...] = _BACKEND_CHOICES
    elif isinstance(backends_field, str):
        backends = (backends_field,)
    elif isinstance(backends_field, (list, tuple)) and backends_field:
        backends = tuple(backends_field)
    else:
        raise ServeRequestError(
            "'backends' must be a backend name, an array of backend names, "
            "or 'both'"
        )
    for backend in backends:
        if backend not in _BACKEND_CHOICES:
            raise ServeRequestError(
                f"unknown backend {backend!r}; expected one of "
                f"{_BACKEND_CHOICES} or 'both'"
            )

    minimize = _bool_field(body, "minimize")
    jobs = body.get("jobs")
    if jobs is not None and (not isinstance(jobs, int) or isinstance(jobs, bool) or jobs < 0):
        raise ServeRequestError(f"'jobs' must be a non-negative integer, got {jobs!r}")

    # Pre-flight every distinct grid point now, while a 400 body is still
    # possible (the stream's 200 status is committed before iter_sweep runs).
    point_count = 0
    try:
        import itertools

        names = list(axes)
        seen = set()
        combinations = list(itertools.product(*(axes[name] for name in names)))
        point_count = len(combinations) * len(backends)
        for combination in combinations:
            params = dict(zip(names, combination))
            validated = spec.validate_params(params)
            key = params_to_key(validated)
            if key in seen:
                continue
            seen.add(key)
            point_batch = (
                batch
                if batch is not None
                else ExperimentRunner._formula_batch(spec, validated, None)
            )
            ExperimentRunner.preflight_batch(spec, validated, point_batch, minimize)
    except ReproError as error:
        raise _reject(error) from None

    return SweepRequest(
        scenario=spec.name,
        grid=axes,
        formulas=batch,
        backends=backends,
        minimize=minimize,
        jobs=jobs,
        point_count=point_count,
    )
