"""Formula syntax for the epistemic language of Halpern & Moses.

The language starts from *ground facts* (primitive propositions about the state of the
system) and is closed under Boolean connectives and the knowledge operators of the
paper:

========================  =====================================================
Operator                  Reading
========================  =====================================================
``K(i, p)``               agent *i* knows *p*                      (Section 3)
``S(G, p)``               someone in *G* knows *p*                 (Section 3)
``E(G, p)``               everyone in *G* knows *p*                (Section 3)
``E(G, p, k)``            E^k: everyone knows that ... (k times)   (Section 3)
``D(G, p)``               *p* is distributed knowledge in *G*      (Section 3)
``C(G, p)``               *p* is common knowledge in *G*           (Section 3)
``EEps(G, p, eps)``       within an eps interval everyone knows p  (Section 11)
``CEps(G, p, eps)``       eps-common knowledge                     (Section 11)
``EDiamond(G, p)``        everyone will eventually have known p    (Section 11)
``CDiamond(G, p)``        eventual (diamond) common knowledge      (Section 11)
``KT(i, p, T)``           at time T on i's clock, i knows p        (Section 12)
``ET(G, p, T)``           timestamped "everyone knows"             (Section 12)
``CT(G, p, T)``           timestamped common knowledge             (Section 12)
``Nu(X, p)`` / ``Mu``     greatest / least fixed point             (Appendix A)
``Var(X)``                fixpoint variable                        (Appendix A)
``Eventually(p)``         p holds now or at some later time in the run
``Always(p)``             p holds now and at all later times in the run
========================  =====================================================

Formulas are immutable and hashable; two formulas are equal exactly when they have the
same structure.  The Boolean connectives can be written with Python operators::

    m = Prop("muddy_a")
    phi = ~m | K("a", m)          # (not m) or K_a m
    psi = (m & phi) >> C(["a", "b"], m)

Nothing in this module evaluates formulas; evaluation lives in
:mod:`repro.kripke.checker` (static Kripke structures) and
:mod:`repro.systems.interpretation` (runs-and-systems models).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, FrozenSet, Iterable, Iterator, Optional, Tuple

from repro.errors import FormulaError, PositivityError
from repro.logic.agents import Agent, Group, GroupLike, as_agent, as_group

__all__ = [
    "Formula",
    "TrueFormula",
    "FalseFormula",
    "TRUE",
    "FALSE",
    "Prop",
    "Var",
    "Not",
    "And",
    "Or",
    "Implies",
    "Iff",
    "Knows",
    "Someone",
    "Everyone",
    "Distributed",
    "Common",
    "EveryoneEps",
    "CommonEps",
    "EveryoneDiamond",
    "CommonDiamond",
    "KnowsAt",
    "EveryoneAt",
    "CommonAt",
    "Eventually",
    "Always",
    "GreatestFixpoint",
    "LeastFixpoint",
    "K",
    "S",
    "E",
    "D",
    "C",
    "EEps",
    "CEps",
    "EDiamond",
    "CDiamond",
    "KT",
    "ET",
    "CT",
    "Nu",
    "Mu",
    "prop",
    "props",
    "conjunction",
    "disjunction",
]


class Formula:
    """Base class of all formulas.

    Subclasses are immutable; the Boolean operators ``~``, ``&``, ``|``, ``>>`` build
    :class:`Not`, :class:`And`, :class:`Or` and :class:`Implies` nodes respectively.
    """

    __slots__ = ()

    # -- construction helpers -------------------------------------------------
    def __invert__(self) -> "Formula":
        return Not(self)

    def __and__(self, other: "Formula") -> "Formula":
        return And((self, _check_formula(other)))

    def __or__(self, other: "Formula") -> "Formula":
        return Or((self, _check_formula(other)))

    def __rshift__(self, other: "Formula") -> "Formula":
        return Implies(self, _check_formula(other))

    def iff(self, other: "Formula") -> "Formula":
        """Build the biconditional ``self <-> other``."""
        return Iff(self, _check_formula(other))

    def implies(self, other: "Formula") -> "Formula":
        """Build the implication ``self -> other`` (alias of ``>>``)."""
        return Implies(self, _check_formula(other))

    # -- structure ------------------------------------------------------------
    def children(self) -> Tuple["Formula", ...]:
        """The immediate subformulas of this formula."""
        raise NotImplementedError

    def with_children(self, children: Tuple["Formula", ...]) -> "Formula":
        """Rebuild this node with new children (used by generic traversals)."""
        raise NotImplementedError

    def subformulas(self) -> Iterator["Formula"]:
        """Yield this formula and all of its subformulas (pre-order, may repeat)."""
        yield self
        for child in self.children():
            yield from child.subformulas()

    def atoms(self) -> FrozenSet[str]:
        """The names of all primitive propositions occurring in the formula."""
        return frozenset(
            f.name for f in self.subformulas() if isinstance(f, Prop)
        )

    def free_variables(self) -> FrozenSet[str]:
        """The names of fixpoint variables occurring free in the formula."""
        return frozenset(self._free_variables(frozenset()))

    def _free_variables(self, bound: FrozenSet[str]) -> Iterator[str]:
        for child in self.children():
            yield from child._free_variables(bound)

    def agents(self) -> FrozenSet[Agent]:
        """Every agent mentioned by a knowledge operator in the formula."""
        found = set()
        for f in self.subformulas():
            if isinstance(f, Knows):
                found.add(f.agent)
            elif isinstance(f, KnowsAt):
                found.add(f.agent)
            elif isinstance(f, _GroupModal):
                found.update(f.group.members)
        return frozenset(found)

    def is_epistemic_free(self) -> bool:
        """``True`` when the formula contains no knowledge or fixpoint operators.

        Such formulas are "ground" in the sense of Section 6: their truth at a point
        depends only on the valuation ``pi``, never on indistinguishability.
        """
        for f in self.subformulas():
            if isinstance(
                f,
                (
                    Knows,
                    KnowsAt,
                    _GroupModal,
                    GreatestFixpoint,
                    LeastFixpoint,
                    Var,
                    Eventually,
                    Always,
                ),
            ):
                return False
        return True

    def depth(self) -> int:
        """The height of the formula's syntax tree (atoms have depth 0)."""
        kids = self.children()
        if not kids:
            return 0
        return 1 + max(child.depth() for child in kids)

    def size(self) -> int:
        """The number of nodes in the formula's syntax tree."""
        return 1 + sum(child.size() for child in self.children())

    # -- equality / hashing ---------------------------------------------------
    def _key(self) -> Tuple[Any, ...]:
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        if type(self) is not type(other):
            return NotImplemented
        return self._key() == other._key()  # type: ignore[union-attr]

    # -- pickling -------------------------------------------------------------
    # Formulas are slotted and freeze themselves with a raising __setattr__, so
    # the default unpickling path (setattr per slot) would die with "formulas
    # are immutable".  Snapshot the slots explicitly and restore them through
    # object.__setattr__; validation is safely skipped because a pickled
    # formula already satisfied its constructor's invariants.  This is what
    # lets formula batches cross the parallel-sweep process-pool boundary.
    def __getstate__(self) -> Dict[str, Any]:
        state: Dict[str, Any] = {}
        for klass in type(self).__mro__:
            for name in getattr(klass, "__slots__", ()):
                state[name] = getattr(self, name)
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        for name, value in state.items():
            object.__setattr__(self, name, value)

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._key()))

    def __repr__(self) -> str:
        raise NotImplementedError

    def __bool__(self) -> bool:
        raise FormulaError(
            "formulas have no truth value by themselves; evaluate them with a model "
            "checker (did you mean to use `&`/`|` instead of `and`/`or`?)"
        )


def _check_formula(value: Any) -> Formula:
    if not isinstance(value, Formula):
        raise FormulaError(f"expected a Formula, got {value!r}")
    return value


# ---------------------------------------------------------------------------
# Atoms
# ---------------------------------------------------------------------------


class TrueFormula(Formula):
    """The constant ``true``."""

    __slots__ = ()

    def children(self) -> Tuple[Formula, ...]:
        return ()

    def with_children(self, children: Tuple[Formula, ...]) -> Formula:
        return self

    def _key(self) -> Tuple[Any, ...]:
        return ()

    def __repr__(self) -> str:
        return "true"


class FalseFormula(Formula):
    """The constant ``false``."""

    __slots__ = ()

    def children(self) -> Tuple[Formula, ...]:
        return ()

    def with_children(self, children: Tuple[Formula, ...]) -> Formula:
        return self

    def _key(self) -> Tuple[Any, ...]:
        return ()

    def __repr__(self) -> str:
        return "false"


TRUE = TrueFormula()
FALSE = FalseFormula()


class Prop(Formula):
    """A primitive proposition (a "ground fact" in the paper's terminology)."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        if not isinstance(name, str) or not name:
            raise FormulaError("proposition names must be non-empty strings")
        object.__setattr__(self, "name", name)

    def __setattr__(self, key: str, value: Any) -> None:  # pragma: no cover
        raise AttributeError("formulas are immutable")

    def children(self) -> Tuple[Formula, ...]:
        return ()

    def with_children(self, children: Tuple[Formula, ...]) -> Formula:
        return self

    def _key(self) -> Tuple[Any, ...]:
        return (self.name,)

    def __repr__(self) -> str:
        return self.name


class Var(Formula):
    """A fixpoint variable, bound by :class:`GreatestFixpoint` or :class:`LeastFixpoint`."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        if not isinstance(name, str) or not name:
            raise FormulaError("variable names must be non-empty strings")
        object.__setattr__(self, "name", name)

    def __setattr__(self, key: str, value: Any) -> None:  # pragma: no cover
        raise AttributeError("formulas are immutable")

    def children(self) -> Tuple[Formula, ...]:
        return ()

    def with_children(self, children: Tuple[Formula, ...]) -> Formula:
        return self

    def _free_variables(self, bound: FrozenSet[str]) -> Iterator[str]:
        if self.name not in bound:
            yield self.name

    def _key(self) -> Tuple[Any, ...]:
        return (self.name,)

    def __repr__(self) -> str:
        return self.name


# ---------------------------------------------------------------------------
# Boolean connectives
# ---------------------------------------------------------------------------


class Not(Formula):
    """Negation."""

    __slots__ = ("operand",)

    def __init__(self, operand: Formula):
        object.__setattr__(self, "operand", _check_formula(operand))

    def __setattr__(self, key: str, value: Any) -> None:  # pragma: no cover
        raise AttributeError("formulas are immutable")

    def children(self) -> Tuple[Formula, ...]:
        return (self.operand,)

    def with_children(self, children: Tuple[Formula, ...]) -> Formula:
        (operand,) = children
        return Not(operand)

    def _key(self) -> Tuple[Any, ...]:
        return (self.operand,)

    def __repr__(self) -> str:
        return f"~{_wrap(self.operand)}"


class _Nary(Formula):
    """Shared behaviour of :class:`And` and :class:`Or` (n-ary, order preserving)."""

    __slots__ = ("operands",)
    _symbol = "?"

    def __init__(self, operands: Iterable[Formula]):
        ops = tuple(_check_formula(op) for op in operands)
        if len(ops) < 1:
            raise FormulaError(f"{type(self).__name__} needs at least one operand")
        object.__setattr__(self, "operands", ops)

    def __setattr__(self, key: str, value: Any) -> None:  # pragma: no cover
        raise AttributeError("formulas are immutable")

    def children(self) -> Tuple[Formula, ...]:
        return self.operands

    def with_children(self, children: Tuple[Formula, ...]) -> Formula:
        return type(self)(children)

    def _key(self) -> Tuple[Any, ...]:
        return (self.operands,)

    def __repr__(self) -> str:
        joined = f" {self._symbol} ".join(_wrap(op) for op in self.operands)
        return f"({joined})"


class And(_Nary):
    """Conjunction of one or more formulas."""

    __slots__ = ()
    _symbol = "&"


class Or(_Nary):
    """Disjunction of one or more formulas."""

    __slots__ = ()
    _symbol = "|"


class Implies(Formula):
    """Material implication ``antecedent -> consequent``."""

    __slots__ = ("antecedent", "consequent")

    def __init__(self, antecedent: Formula, consequent: Formula):
        object.__setattr__(self, "antecedent", _check_formula(antecedent))
        object.__setattr__(self, "consequent", _check_formula(consequent))

    def __setattr__(self, key: str, value: Any) -> None:  # pragma: no cover
        raise AttributeError("formulas are immutable")

    def children(self) -> Tuple[Formula, ...]:
        return (self.antecedent, self.consequent)

    def with_children(self, children: Tuple[Formula, ...]) -> Formula:
        antecedent, consequent = children
        return Implies(antecedent, consequent)

    def _key(self) -> Tuple[Any, ...]:
        return (self.antecedent, self.consequent)

    def __repr__(self) -> str:
        return f"({_wrap(self.antecedent)} -> {_wrap(self.consequent)})"


class Iff(Formula):
    """Biconditional ``left <-> right``."""

    __slots__ = ("left", "right")

    def __init__(self, left: Formula, right: Formula):
        object.__setattr__(self, "left", _check_formula(left))
        object.__setattr__(self, "right", _check_formula(right))

    def __setattr__(self, key: str, value: Any) -> None:  # pragma: no cover
        raise AttributeError("formulas are immutable")

    def children(self) -> Tuple[Formula, ...]:
        return (self.left, self.right)

    def with_children(self, children: Tuple[Formula, ...]) -> Formula:
        left, right = children
        return Iff(left, right)

    def _key(self) -> Tuple[Any, ...]:
        return (self.left, self.right)

    def __repr__(self) -> str:
        return f"({_wrap(self.left)} <-> {_wrap(self.right)})"


# ---------------------------------------------------------------------------
# Knowledge operators
# ---------------------------------------------------------------------------


class Knows(Formula):
    """``K_i phi`` — agent *i* knows ``phi``."""

    __slots__ = ("agent", "operand")

    def __init__(self, agent: Agent, operand: Formula):
        object.__setattr__(self, "agent", as_agent(agent))
        object.__setattr__(self, "operand", _check_formula(operand))

    def __setattr__(self, key: str, value: Any) -> None:  # pragma: no cover
        raise AttributeError("formulas are immutable")

    def children(self) -> Tuple[Formula, ...]:
        return (self.operand,)

    def with_children(self, children: Tuple[Formula, ...]) -> Formula:
        (operand,) = children
        return Knows(self.agent, operand)

    def _key(self) -> Tuple[Any, ...]:
        return (self.agent, self.operand)

    def __repr__(self) -> str:
        return f"K_{self.agent}[{self.operand!r}]"


class _GroupModal(Formula):
    """Shared behaviour of the group-knowledge operators."""

    __slots__ = ("group", "operand")
    _name = "?"

    def __init__(self, group: GroupLike, operand: Formula):
        object.__setattr__(self, "group", as_group(group))
        object.__setattr__(self, "operand", _check_formula(operand))

    def __setattr__(self, key: str, value: Any) -> None:  # pragma: no cover
        raise AttributeError("formulas are immutable")

    def children(self) -> Tuple[Formula, ...]:
        return (self.operand,)

    def with_children(self, children: Tuple[Formula, ...]) -> Formula:
        (operand,) = children
        return type(self)(self.group, operand)

    def _key(self) -> Tuple[Any, ...]:
        return (self.group, self.operand)

    def __repr__(self) -> str:
        return f"{self._name}_{self.group!r}[{self.operand!r}]"


class Someone(_GroupModal):
    """``S_G phi`` — someone in *G* knows ``phi`` (disjunction of K_i)."""

    __slots__ = ()
    _name = "S"


class Everyone(_GroupModal):
    """``E_G phi`` — everyone in *G* knows ``phi`` (conjunction of K_i)."""

    __slots__ = ()
    _name = "E"


class Distributed(_GroupModal):
    """``D_G phi`` — ``phi`` is distributed knowledge in *G*."""

    __slots__ = ()
    _name = "D"


class Common(_GroupModal):
    """``C_G phi`` — ``phi`` is common knowledge in *G*.

    Semantically this is the greatest fixed point of ``X == E_G(phi & X)``
    (equivalently, on finite models, the infinite conjunction of ``E^k_G phi``).
    """

    __slots__ = ()
    _name = "C"


class EveryoneEps(_GroupModal):
    """``E^eps_G phi`` — within an ``eps`` interval containing now, each member of *G*
    knows ``phi`` at some time in that interval (Section 11)."""

    __slots__ = ("eps",)
    _name = "Eeps"

    def __init__(self, group: GroupLike, operand: Formula, eps: float):
        super().__init__(group, operand)
        if eps < 0:
            raise FormulaError("eps must be non-negative")
        object.__setattr__(self, "eps", eps)

    def with_children(self, children: Tuple[Formula, ...]) -> Formula:
        (operand,) = children
        return EveryoneEps(self.group, operand, self.eps)

    def _key(self) -> Tuple[Any, ...]:
        return (self.group, self.operand, self.eps)

    def __repr__(self) -> str:
        return f"E^{self.eps}_{self.group!r}[{self.operand!r}]"


class CommonEps(_GroupModal):
    """``C^eps_G phi`` — eps-common knowledge: greatest fixed point of
    ``X == E^eps_G(phi & X)`` (Section 11)."""

    __slots__ = ("eps",)
    _name = "Ceps"

    def __init__(self, group: GroupLike, operand: Formula, eps: float):
        super().__init__(group, operand)
        if eps < 0:
            raise FormulaError("eps must be non-negative")
        object.__setattr__(self, "eps", eps)

    def with_children(self, children: Tuple[Formula, ...]) -> Formula:
        (operand,) = children
        return CommonEps(self.group, operand, self.eps)

    def _key(self) -> Tuple[Any, ...]:
        return (self.group, self.operand, self.eps)

    def __repr__(self) -> str:
        return f"C^{self.eps}_{self.group!r}[{self.operand!r}]"


class EveryoneDiamond(_GroupModal):
    """``E^<>_G phi`` — every member of *G* knows ``phi`` at some time in the run
    (Section 11: "everyone will eventually have known phi")."""

    __slots__ = ()
    _name = "E<>"


class CommonDiamond(_GroupModal):
    """``C^<>_G phi`` — eventual common knowledge: greatest fixed point of
    ``X == E^<>_G(phi & X)`` (Section 11)."""

    __slots__ = ()
    _name = "C<>"


class KnowsAt(Formula):
    """``K^T_i phi`` — at time ``T`` on its clock, agent *i* knows ``phi`` (Section 12)."""

    __slots__ = ("agent", "operand", "timestamp")

    def __init__(self, agent: Agent, operand: Formula, timestamp: float):
        object.__setattr__(self, "agent", as_agent(agent))
        object.__setattr__(self, "operand", _check_formula(operand))
        object.__setattr__(self, "timestamp", timestamp)

    def __setattr__(self, key: str, value: Any) -> None:  # pragma: no cover
        raise AttributeError("formulas are immutable")

    def children(self) -> Tuple[Formula, ...]:
        return (self.operand,)

    def with_children(self, children: Tuple[Formula, ...]) -> Formula:
        (operand,) = children
        return KnowsAt(self.agent, operand, self.timestamp)

    def _key(self) -> Tuple[Any, ...]:
        return (self.agent, self.operand, self.timestamp)

    def __repr__(self) -> str:
        return f"K^{self.timestamp}_{self.agent}[{self.operand!r}]"


class EveryoneAt(_GroupModal):
    """``E^T_G phi`` — each member of *G* knows ``phi`` at time ``T`` on its own clock
    (Section 12)."""

    __slots__ = ("timestamp",)
    _name = "ET"

    def __init__(self, group: GroupLike, operand: Formula, timestamp: float):
        super().__init__(group, operand)
        object.__setattr__(self, "timestamp", timestamp)

    def with_children(self, children: Tuple[Formula, ...]) -> Formula:
        (operand,) = children
        return EveryoneAt(self.group, operand, self.timestamp)

    def _key(self) -> Tuple[Any, ...]:
        return (self.group, self.operand, self.timestamp)

    def __repr__(self) -> str:
        return f"E^{self.timestamp}_{self.group!r}[{self.operand!r}]"


class CommonAt(_GroupModal):
    """``C^T_G phi`` — timestamped common knowledge: greatest fixed point of
    ``X == E^T_G(phi & X)`` (Section 12)."""

    __slots__ = ("timestamp",)
    _name = "CT"

    def __init__(self, group: GroupLike, operand: Formula, timestamp: float):
        super().__init__(group, operand)
        object.__setattr__(self, "timestamp", timestamp)

    def with_children(self, children: Tuple[Formula, ...]) -> Formula:
        (operand,) = children
        return CommonAt(self.group, operand, self.timestamp)

    def _key(self) -> Tuple[Any, ...]:
        return (self.group, self.operand, self.timestamp)

    def __repr__(self) -> str:
        return f"C^{self.timestamp}_{self.group!r}[{self.operand!r}]"


# ---------------------------------------------------------------------------
# Temporal operators (future fragment, over points of a run)
# ---------------------------------------------------------------------------


class Eventually(Formula):
    """``<> phi`` — ``phi`` holds at the current point or at some later point of the
    same run (footnote 7 of the paper)."""

    __slots__ = ("operand",)

    def __init__(self, operand: Formula):
        object.__setattr__(self, "operand", _check_formula(operand))

    def __setattr__(self, key: str, value: Any) -> None:  # pragma: no cover
        raise AttributeError("formulas are immutable")

    def children(self) -> Tuple[Formula, ...]:
        return (self.operand,)

    def with_children(self, children: Tuple[Formula, ...]) -> Formula:
        (operand,) = children
        return Eventually(operand)

    def _key(self) -> Tuple[Any, ...]:
        return (self.operand,)

    def __repr__(self) -> str:
        return f"<>[{self.operand!r}]"


class Always(Formula):
    """``[] phi`` — ``phi`` holds at the current point and at every later point of the
    same run."""

    __slots__ = ("operand",)

    def __init__(self, operand: Formula):
        object.__setattr__(self, "operand", _check_formula(operand))

    def __setattr__(self, key: str, value: Any) -> None:  # pragma: no cover
        raise AttributeError("formulas are immutable")

    def children(self) -> Tuple[Formula, ...]:
        return (self.operand,)

    def with_children(self, children: Tuple[Formula, ...]) -> Formula:
        (operand,) = children
        return Always(operand)

    def _key(self) -> Tuple[Any, ...]:
        return (self.operand,)

    def __repr__(self) -> str:
        return f"[][{self.operand!r}]"


# ---------------------------------------------------------------------------
# Fixpoint operators (Appendix A)
# ---------------------------------------------------------------------------


class _Fixpoint(Formula):
    """Shared behaviour of the fixpoint binders ``nu X. phi`` and ``mu X. phi``.

    Following Appendix A, every free occurrence of the bound variable in the body must
    be *positive* (under an even number of negations) so that the associated set
    function is monotone increasing and the fixed point exists.
    """

    __slots__ = ("variable", "body")
    _name = "?"

    def __init__(self, variable: str, body: Formula):
        if not isinstance(variable, str) or not variable:
            raise FormulaError("fixpoint variable names must be non-empty strings")
        body = _check_formula(body)
        if not _occurrences_positive(body, variable, positive=True):
            raise PositivityError(
                f"all free occurrences of {variable!r} in the body of a fixpoint "
                "formula must be positive (under an even number of negations)",
                variable=variable,
            )
        object.__setattr__(self, "variable", variable)
        object.__setattr__(self, "body", body)

    def __setattr__(self, key: str, value: Any) -> None:  # pragma: no cover
        raise AttributeError("formulas are immutable")

    def children(self) -> Tuple[Formula, ...]:
        return (self.body,)

    def with_children(self, children: Tuple[Formula, ...]) -> Formula:
        (body,) = children
        return type(self)(self.variable, body)

    def _free_variables(self, bound: FrozenSet[str]) -> Iterator[str]:
        yield from self.body._free_variables(bound | {self.variable})

    def _key(self) -> Tuple[Any, ...]:
        return (self.variable, self.body)

    def __repr__(self) -> str:
        return f"{self._name} {self.variable}.[{self.body!r}]"


class GreatestFixpoint(_Fixpoint):
    """``nu X. phi`` — the greatest fixed point of ``phi`` with respect to ``X``."""

    __slots__ = ()
    _name = "nu"


class LeastFixpoint(_Fixpoint):
    """``mu X. phi`` — the least fixed point of ``phi`` with respect to ``X``."""

    __slots__ = ()
    _name = "mu"


def _occurrences_positive(formula: Formula, variable: str, positive: bool) -> bool:
    """Check that every free occurrence of ``variable`` appears under an even number
    of negations when ``positive`` is True."""
    if isinstance(formula, Var):
        return positive if formula.name == variable else True
    if isinstance(formula, Not):
        return _occurrences_positive(formula.operand, variable, not positive)
    if isinstance(formula, Implies):
        return _occurrences_positive(
            formula.antecedent, variable, not positive
        ) and _occurrences_positive(formula.consequent, variable, positive)
    if isinstance(formula, Iff):
        # The variable occurs both positively and negatively in an <->; only allow it
        # when the variable does not occur at all.
        return variable not in formula.free_variables()
    if isinstance(formula, _Fixpoint) and formula.variable == variable:
        return True  # re-bound, occurrences inside are not free
    return all(
        _occurrences_positive(child, variable, positive) for child in formula.children()
    )


# ---------------------------------------------------------------------------
# Convenience constructors (the names used throughout the paper)
# ---------------------------------------------------------------------------


def K(agent: Agent, formula: Formula) -> Formula:
    """``K_i phi``: agent ``agent`` knows ``formula``."""
    return Knows(agent, formula)


def S(group: GroupLike, formula: Formula) -> Formula:
    """``S_G phi``: someone in ``group`` knows ``formula``."""
    return Someone(group, formula)


def E(group: GroupLike, formula: Formula, k: int = 1) -> Formula:
    """``E^k_G phi``: everyone in ``group`` knows ... (nested ``k`` times).

    ``E(G, phi)`` is plain "everyone knows"; ``E(G, phi, k)`` builds the k-fold
    nesting ``E_G E_G ... E_G phi`` used in Section 3 and in the muddy-children
    analysis.
    """
    if k < 1:
        raise FormulaError("E^k requires k >= 1")
    result = formula
    for _ in range(k):
        result = Everyone(group, result)
    return result


def D(group: GroupLike, formula: Formula) -> Formula:
    """``D_G phi``: ``formula`` is distributed knowledge in ``group``."""
    return Distributed(group, formula)


def C(group: GroupLike, formula: Formula) -> Formula:
    """``C_G phi``: ``formula`` is common knowledge in ``group``."""
    return Common(group, formula)


def EEps(group: GroupLike, formula: Formula, eps: float) -> Formula:
    """``E^eps_G phi`` (Section 11)."""
    return EveryoneEps(group, formula, eps)


def CEps(group: GroupLike, formula: Formula, eps: float) -> Formula:
    """``C^eps_G phi``: eps-common knowledge (Section 11)."""
    return CommonEps(group, formula, eps)


def EDiamond(group: GroupLike, formula: Formula) -> Formula:
    """``E^<>_G phi`` (Section 11)."""
    return EveryoneDiamond(group, formula)


def CDiamond(group: GroupLike, formula: Formula) -> Formula:
    """``C^<>_G phi``: eventual common knowledge (Section 11)."""
    return CommonDiamond(group, formula)


def KT(agent: Agent, formula: Formula, timestamp: float) -> Formula:
    """``K^T_i phi``: at time ``timestamp`` on its clock, ``agent`` knows ``formula``."""
    return KnowsAt(agent, formula, timestamp)


def ET(group: GroupLike, formula: Formula, timestamp: float) -> Formula:
    """``E^T_G phi`` (Section 12)."""
    return EveryoneAt(group, formula, timestamp)


def CT(group: GroupLike, formula: Formula, timestamp: float) -> Formula:
    """``C^T_G phi``: timestamped common knowledge (Section 12)."""
    return CommonAt(group, formula, timestamp)


def Nu(variable: str, body: Formula) -> Formula:
    """``nu X. phi``: greatest fixed point (Appendix A)."""
    return GreatestFixpoint(variable, body)


def Mu(variable: str, body: Formula) -> Formula:
    """``mu X. phi``: least fixed point (Appendix A)."""
    return LeastFixpoint(variable, body)


def prop(name: str) -> Prop:
    """Build a primitive proposition."""
    return Prop(name)


def props(*names: str) -> Tuple[Prop, ...]:
    """Build several primitive propositions at once.

    >>> p, q = props("p", "q")
    """
    return tuple(Prop(name) for name in names)


def conjunction(formulas: Iterable[Formula]) -> Formula:
    """The conjunction of ``formulas`` (``true`` if the iterable is empty)."""
    items = tuple(formulas)
    if not items:
        return TRUE
    if len(items) == 1:
        return items[0]
    return And(items)


def disjunction(formulas: Iterable[Formula]) -> Formula:
    """The disjunction of ``formulas`` (``false`` if the iterable is empty)."""
    items = tuple(formulas)
    if not items:
        return FALSE
    if len(items) == 1:
        return items[0]
    return Or(items)


def _wrap(formula: Formula) -> str:
    text = repr(formula)
    return text
