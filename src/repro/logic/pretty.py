"""Render formulas back into the parser's concrete syntax.

:func:`pretty` is the inverse of :func:`repro.logic.parser.parse`: for every
formula it accepts, ``parse(pretty(f)) == f`` holds *structurally* (the printer
inserts parentheses exactly where the grammar's precedence and the formula's
shape disagree, so nested same-operator nodes like ``(p & q) & r`` survive the
round trip).  This is also what lets formula batches travel as plain text — the
CLI, logs and the parallel-sweep docs all show formulas in a form that can be
pasted straight back into ``repro run -f``.

The guarantee is conditional on the formula being *expressible* in the concrete
syntax, and :func:`pretty` raises :class:`~repro.errors.FormulaError` rather
than printing something that would not round-trip:

* proposition, agent and fixpoint-variable names must be identifiers
  (``[A-Za-z][A-Za-z0-9_']*``, with ``true``/``false`` reserved) or, for
  propositions and agents, non-negative integers;
* ``eps``/timestamp parameters must be non-negative and have a plain decimal
  rendering (no exponent notation);
* fixpoint variables must be bound (free variables would re-parse as
  propositions) and no proposition may shadow a variable in scope;
* ``And``/``Or`` need at least two operands (the grammar cannot spell a
  one-element conjunction).
"""

from __future__ import annotations

import re
from typing import List, Union

from repro.errors import FormulaError
from repro.logic.agents import Agent, Group
from repro.logic.syntax import (
    Always,
    And,
    Common,
    CommonAt,
    CommonDiamond,
    CommonEps,
    Distributed,
    Everyone,
    EveryoneAt,
    EveryoneDiamond,
    EveryoneEps,
    Eventually,
    FalseFormula,
    Formula,
    GreatestFixpoint,
    Iff,
    Implies,
    Knows,
    KnowsAt,
    LeastFixpoint,
    Not,
    Or,
    Prop,
    Someone,
    TrueFormula,
    Var,
)

__all__ = ["pretty"]

# Precedence levels, loosest to tightest; a subterm is parenthesised whenever
# its own level is below the minimum its context requires.
_BINDER, _IFF, _IMPLIES, _OR, _AND, _UNARY, _ATOM = range(7)

_IDENT_RE = re.compile(r"^[A-Za-z][A-Za-z0-9_']*$")
_NUMBER_RE = re.compile(r"^\d+(\.\d+)?$")
_RESERVED = frozenset({"true", "false"})
# Identifier-shaped names the tokenizer would nevertheless split: 'K_a' lexes
# as the modal token 'K_' + agent 'a', never as one identifier.
_MODAL_SHAPED_RE = re.compile(r"^[KECDS]_[A-Za-z0-9]")


def _name_text(name: str, what: str) -> str:
    """Validate that ``name`` re-tokenizes as one identifier."""
    if not _IDENT_RE.match(name) or name in _RESERVED:
        raise FormulaError(
            f"{what} {name!r} is not expressible in the concrete syntax "
            "(needs an identifier: letter, then letters/digits/_/')"
        )
    if _MODAL_SHAPED_RE.match(name):
        raise FormulaError(
            f"{what} {name!r} is not expressible in the concrete syntax "
            "(it would re-tokenize as a modal operator)"
        )
    return name


def _agent_text(agent: Agent) -> str:
    if isinstance(agent, bool):
        raise FormulaError(f"agent {agent!r} is not expressible in the concrete syntax")
    if isinstance(agent, int):
        if agent < 0:
            raise FormulaError(f"agent {agent!r} is not expressible (negative integer)")
        return str(agent)
    if isinstance(agent, str):
        return _name_text(agent, "agent name")
    raise FormulaError(f"agent {agent!r} is not expressible in the concrete syntax")


def _group_text(group: Group) -> str:
    return "{" + ",".join(_agent_text(agent) for agent in group.sorted_members()) + "}"


def _number_text(value: Union[int, float], what: str) -> str:
    """Render an ``eps``/timestamp parameter as a plain decimal literal."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise FormulaError(f"{what} {value!r} is not expressible in the concrete syntax")
    if value < 0:
        raise FormulaError(f"{what} {value!r} is not expressible (negative)")
    if isinstance(value, float) and value.is_integer():
        value = int(value)
    text = repr(value)
    if not _NUMBER_RE.match(text):
        raise FormulaError(
            f"{what} {value!r} has no plain decimal rendering (got {text!r})"
        )
    return text


def _prop_text(name: str) -> str:
    # Numeric proposition names parse back through the `int` token branch.
    if name.isdigit():
        return name
    return _name_text(name, "proposition name")


class _Printer:
    """Stateful renderer: tracks the fixpoint variables currently in scope."""

    def __init__(self) -> None:
        self.bound: List[str] = []

    def render(self, formula: Formula, minimum: int) -> str:
        text, level = self.raw(formula)
        if level < minimum:
            return f"({text})"
        return text

    def raw(self, formula: Formula) -> "tuple[str, int]":
        """The unparenthesised rendering of ``formula`` plus its precedence level."""
        if isinstance(formula, TrueFormula):
            return "true", _ATOM
        if isinstance(formula, FalseFormula):
            return "false", _ATOM
        if isinstance(formula, Prop):
            if formula.name in self.bound:
                raise FormulaError(
                    f"proposition {formula.name!r} shadows a fixpoint variable in "
                    "scope; the round trip would re-parse it as that variable"
                )
            return _prop_text(formula.name), _ATOM
        if isinstance(formula, Var):
            if formula.name not in self.bound:
                raise FormulaError(
                    f"fixpoint variable {formula.name!r} occurs free; a free "
                    "variable would re-parse as a proposition"
                )
            return _name_text(formula.name, "fixpoint variable"), _ATOM
        if isinstance(formula, Not):
            return "~" + self.render(formula.operand, _UNARY), _UNARY
        if isinstance(formula, And):
            return self._nary(formula, " & ", _AND)
        if isinstance(formula, Or):
            return self._nary(formula, " | ", _OR)
        if isinstance(formula, Implies):
            left = self.render(formula.antecedent, _OR)
            right = self.render(formula.consequent, _IMPLIES)  # right associative
            return f"{left} -> {right}", _IMPLIES
        if isinstance(formula, Iff):
            left = self.render(formula.left, _IFF)  # left associative
            right = self.render(formula.right, _IMPLIES)
            return f"{left} <-> {right}", _IFF
        if isinstance(formula, Eventually):
            return "<> " + self.render(formula.operand, _UNARY), _UNARY
        if isinstance(formula, Always):
            return "[] " + self.render(formula.operand, _UNARY), _UNARY
        if isinstance(formula, Knows):
            body = self.render(formula.operand, _UNARY)
            return f"K_{_agent_text(formula.agent)} {body}", _UNARY
        if isinstance(formula, Everyone):
            return self._everyone(formula)
        if isinstance(formula, Someone):
            return self._group_modal("S", formula)
        if isinstance(formula, Distributed):
            return self._group_modal("D", formula)
        if isinstance(formula, Common):
            return self._group_modal("C", formula)
        if isinstance(formula, EveryoneEps):
            return self._group_modal(
                f"Eeps^{_number_text(formula.eps, 'eps')}", formula
            )
        if isinstance(formula, CommonEps):
            return self._group_modal(
                f"Ceps^{_number_text(formula.eps, 'eps')}", formula
            )
        if isinstance(formula, EveryoneDiamond):
            return self._group_modal("E<>", formula)
        if isinstance(formula, CommonDiamond):
            return self._group_modal("C<>", formula)
        if isinstance(formula, KnowsAt):
            stamp = _number_text(formula.timestamp, "timestamp")
            body = self.render(formula.operand, _UNARY)
            return f"K@{stamp}_{_agent_text(formula.agent)} {body}", _UNARY
        if isinstance(formula, EveryoneAt):
            return self._group_modal(
                f"E@{_number_text(formula.timestamp, 'timestamp')}", formula
            )
        if isinstance(formula, CommonAt):
            return self._group_modal(
                f"C@{_number_text(formula.timestamp, 'timestamp')}", formula
            )
        if isinstance(formula, (GreatestFixpoint, LeastFixpoint)):
            return self._binder(formula)
        raise FormulaError(
            f"no concrete syntax for {type(formula).__name__} nodes"
        )

    # -- composite renderings ------------------------------------------------
    def _nary(self, formula: Union[And, Or], joiner: str, level: int) -> "tuple[str, int]":
        if len(formula.operands) < 2:
            raise FormulaError(
                f"a one-operand {type(formula).__name__} has no concrete syntax"
            )
        # Operands at the same level are parenthesised so nesting survives the
        # parser's flat n-ary collection: (p & q) & r stays two nodes deep.
        parts = [self.render(operand, level + 1) for operand in formula.operands]
        return joiner.join(parts), level

    def _everyone(self, formula: Everyone) -> "tuple[str, int]":
        # Collapse maximal same-group nesting into E^k, the parser's spelling.
        depth = 1
        inner = formula.operand
        while isinstance(inner, Everyone) and inner.group == formula.group:
            depth += 1
            inner = inner.operand
        operator = "E" if depth == 1 else f"E^{depth}"
        body = self.render(inner, _UNARY)
        return f"{operator}_{_group_text(formula.group)} {body}", _UNARY

    def _group_modal(self, operator: str, formula) -> "tuple[str, int]":
        body = self.render(formula.operand, _UNARY)
        return f"{operator}_{_group_text(formula.group)} {body}", _UNARY

    def _binder(self, formula: Union[GreatestFixpoint, LeastFixpoint]) -> "tuple[str, int]":
        keyword = "nu" if isinstance(formula, GreatestFixpoint) else "mu"
        variable = _name_text(formula.variable, "fixpoint variable")
        self.bound.append(variable)
        try:
            body = self.render(formula.body, _BINDER)
        finally:
            self.bound.pop()
        return f"{keyword} {variable}. {body}", _BINDER


def pretty(formula: Formula) -> str:
    """Render ``formula`` in the parser's concrete syntax.

    ``parse(pretty(f)) == f`` for every expressible formula (see the module
    docstring for the exact conditions); inexpressible formulas raise
    :class:`~repro.errors.FormulaError` instead of printing text that would
    not round-trip.

    >>> from repro.logic.parser import parse
    >>> pretty(parse("K_a (p & q) -> C_{a,b} p"))
    'K_a (p & q) -> C_{a,b} p'
    """
    if not isinstance(formula, Formula):
        raise FormulaError(f"expected a Formula, got {formula!r}")
    return _Printer().render(formula, _BINDER)
