"""Structural transformations on formulas.

This module provides the purely syntactic machinery used throughout the library:

* :func:`substitute` — capture-avoiding substitution of formulas for propositions or
  fixpoint variables (Appendix A writes this ``phi[psi/X]``).
* :func:`expand_derived` — rewrite the derived group operators (``S_G``, ``E_G``) into
  their definitions in terms of ``K_i``.
* :func:`unfold_common` — unfold ``C_G phi`` into the conjunction
  ``E_G phi & E^2_G phi & ... & E^k_G phi`` up to a chosen depth (Section 3).
* :func:`to_nnf` — negation normal form for the Boolean + ``K`` fragment.
* :func:`simplify` — light-weight Boolean simplification (constant folding,
  flattening, idempotence) that preserves logical equivalence.
"""

from __future__ import annotations

from typing import Dict, Mapping, Union

from repro.errors import FormulaError
from repro.logic.syntax import (
    FALSE,
    TRUE,
    And,
    Common,
    CommonAt,
    CommonDiamond,
    CommonEps,
    Distributed,
    Everyone,
    EveryoneAt,
    EveryoneDiamond,
    EveryoneEps,
    FalseFormula,
    Formula,
    GreatestFixpoint,
    Iff,
    Implies,
    Knows,
    LeastFixpoint,
    Not,
    Or,
    Prop,
    Someone,
    TrueFormula,
    Var,
    conjunction,
    disjunction,
)

__all__ = [
    "substitute",
    "substitute_var",
    "expand_derived",
    "unfold_common",
    "unfold_fixpoint",
    "to_nnf",
    "simplify",
]


def substitute(formula: Formula, mapping: Mapping[Union[str, Prop], Formula]) -> Formula:
    """Replace propositions by formulas throughout ``formula``.

    The mapping keys may be :class:`Prop` instances or plain proposition names.  The
    substitution is simultaneous (the replacement formulas are not themselves
    rewritten).

    >>> from repro.logic.syntax import props, K
    >>> p, q = props("p", "q")
    >>> substitute(K("a", p), {"p": q})
    K_a[q]
    """
    normalised: Dict[str, Formula] = {}
    for key, value in mapping.items():
        name = key.name if isinstance(key, Prop) else key
        normalised[name] = value

    def visit(node: Formula) -> Formula:
        if isinstance(node, Prop) and node.name in normalised:
            return normalised[node.name]
        children = node.children()
        if not children:
            return node
        new_children = tuple(visit(child) for child in children)
        if new_children == children:
            return node
        return node.with_children(new_children)

    return visit(formula)


def substitute_var(formula: Formula, variable: str, replacement: Formula) -> Formula:
    """Replace free occurrences of the fixpoint variable ``variable`` by ``replacement``.

    This is the ``phi[psi/X]`` operation of Appendix A.  Occurrences of ``variable``
    bound by an inner ``nu``/``mu`` with the same name are left untouched.
    """

    def visit(node: Formula) -> Formula:
        if isinstance(node, Var):
            return replacement if node.name == variable else node
        if isinstance(node, (GreatestFixpoint, LeastFixpoint)) and node.variable == variable:
            return node  # variable is re-bound inside; no free occurrences below
        children = node.children()
        if not children:
            return node
        new_children = tuple(visit(child) for child in children)
        if new_children == children:
            return node
        return node.with_children(new_children)

    return visit(formula)


def expand_derived(formula: Formula) -> Formula:
    """Rewrite ``S_G`` and ``E_G`` into explicit disjunctions/conjunctions of ``K_i``.

    ``D_G``, ``C_G`` and the temporal variants are *not* expanded because they are not
    definable in terms of ``K_i`` by a finite formula (Section 3).
    """

    def visit(node: Formula) -> Formula:
        if isinstance(node, Someone):
            inner = visit(node.operand)
            return disjunction(Knows(agent, inner) for agent in node.group)
        if isinstance(node, Everyone):
            inner = visit(node.operand)
            return conjunction(Knows(agent, inner) for agent in node.group)
        children = node.children()
        if not children:
            return node
        new_children = tuple(visit(child) for child in children)
        if new_children == children:
            return node
        return node.with_children(new_children)

    return visit(formula)


def unfold_common(formula: Common, depth: int) -> Formula:
    """The finite approximation ``E_G phi & E^2_G phi & ... & E^depth_G phi`` of
    ``C_G phi`` (Section 3).

    On a finite model with at most ``depth`` equivalence classes this approximation
    coincides with common knowledge; in general it is strictly weaker.
    """
    if depth < 1:
        raise FormulaError("unfold_common requires depth >= 1")
    conjuncts = []
    layered = formula.operand
    for _ in range(depth):
        layered = Everyone(formula.group, layered)
        conjuncts.append(layered)
    return conjunction(conjuncts)


def unfold_fixpoint(formula: Union[GreatestFixpoint, LeastFixpoint]) -> Formula:
    """One unfolding step ``nu X. phi  ==>  phi[nu X. phi / X]`` (Appendix A's
    fixed-point axiom ``nu X.phi == phi[nu X.phi/X]``)."""
    return substitute_var(formula.body, formula.variable, formula)


def to_nnf(formula: Formula) -> Formula:
    """Negation normal form for the Boolean + epistemic fragment.

    Negations are pushed inwards until they apply only to propositions or to modal
    operators (there is no dual operator for ``K``/``C`` in the language, so ``~K_i``
    and ``~C_G`` remain as-is).  Implications and biconditionals are eliminated.
    """

    def visit(node: Formula, negate: bool) -> Formula:
        if isinstance(node, TrueFormula):
            return FALSE if negate else TRUE
        if isinstance(node, FalseFormula):
            return TRUE if negate else FALSE
        if isinstance(node, (Prop, Var)):
            return Not(node) if negate else node
        if isinstance(node, Not):
            return visit(node.operand, not negate)
        if isinstance(node, And):
            parts = tuple(visit(op, negate) for op in node.operands)
            return Or(parts) if negate else And(parts)
        if isinstance(node, Or):
            parts = tuple(visit(op, negate) for op in node.operands)
            return And(parts) if negate else Or(parts)
        if isinstance(node, Implies):
            # a -> b  ==  ~a | b
            rewritten = Or((Not(node.antecedent), node.consequent))
            return visit(rewritten, negate)
        if isinstance(node, Iff):
            # a <-> b  ==  (a -> b) & (b -> a)
            rewritten = And(
                (
                    Or((Not(node.left), node.right)),
                    Or((Not(node.right), node.left)),
                )
            )
            return visit(rewritten, negate)
        # Modal / temporal / fixpoint operators: recurse positively into the body and
        # keep an outer negation if required.
        children = node.children()
        new_children = tuple(visit(child, False) for child in children)
        rebuilt = node.with_children(new_children) if children else node
        return Not(rebuilt) if negate else rebuilt

    return visit(formula, False)


def simplify(formula: Formula) -> Formula:
    """Boolean constant folding and flattening.

    The result is logically equivalent to the input under every interpretation; only
    ``true``/``false`` constants, double negations, nested conjunctions/disjunctions
    and duplicate operands are simplified.  Modal operators are preserved (their
    bodies are simplified recursively), except for the constant cases
    ``K_i true == true`` style simplifications, which are deliberately *not* applied
    because they rely on the necessitation rule rather than on propositional logic.
    """

    def visit(node: Formula) -> Formula:
        children = node.children()
        if children:
            node = node.with_children(tuple(visit(child) for child in children))

        if isinstance(node, Not):
            inner = node.operand
            if isinstance(inner, TrueFormula):
                return FALSE
            if isinstance(inner, FalseFormula):
                return TRUE
            if isinstance(inner, Not):
                return inner.operand
            return node

        if isinstance(node, And):
            flat = []
            for operand in node.operands:
                if isinstance(operand, TrueFormula):
                    continue
                if isinstance(operand, FalseFormula):
                    return FALSE
                if isinstance(operand, And):
                    flat.extend(operand.operands)
                else:
                    flat.append(operand)
            unique = list(dict.fromkeys(flat))
            return conjunction(unique)

        if isinstance(node, Or):
            flat = []
            for operand in node.operands:
                if isinstance(operand, FalseFormula):
                    continue
                if isinstance(operand, TrueFormula):
                    return TRUE
                if isinstance(operand, Or):
                    flat.extend(operand.operands)
                else:
                    flat.append(operand)
            unique = list(dict.fromkeys(flat))
            return disjunction(unique)

        if isinstance(node, Implies):
            if isinstance(node.antecedent, FalseFormula):
                return TRUE
            if isinstance(node.antecedent, TrueFormula):
                return node.consequent
            if isinstance(node.consequent, TrueFormula):
                return TRUE
            if node.antecedent == node.consequent:
                return TRUE
            return node

        if isinstance(node, Iff):
            if node.left == node.right:
                return TRUE
            return node

        return node

    return visit(formula)
