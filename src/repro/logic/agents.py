"""Agents and groups of agents.

The paper talks about processors ``p_1 .. p_n`` and groups ``G`` of processors.  In
this library an *agent* is any hashable, comparable label (strings and integers are
the common cases), and a *group* is a frozen, non-empty set of agents.

The helpers in this module normalise user input (single agent, list, tuple, set,
``Group``) into a canonical :class:`Group` so that structurally equal formulas compare
equal regardless of how the caller spelled the group.
"""

from __future__ import annotations

from typing import Any, FrozenSet, Iterable, Iterator, Tuple, Union

from repro.errors import FormulaError

Agent = Any
"""Type alias for agent labels.  Any hashable value may be used."""


class Group:
    """An immutable, non-empty set of agents.

    ``Group`` behaves like a frozenset (membership, iteration, size, subset tests) but
    renders deterministically and validates non-emptiness, which the paper requires
    for all the group-knowledge operators.

    Examples
    --------
    >>> g = Group(["alice", "bob"])
    >>> "alice" in g
    True
    >>> len(g)
    2
    >>> Group(["bob", "alice"]) == g
    True
    """

    __slots__ = ("_members",)

    def __init__(self, members: Iterable[Agent]):
        member_set = frozenset(members)
        if not member_set:
            raise FormulaError("a group of agents must be non-empty")
        self._members: FrozenSet[Agent] = member_set

    @property
    def members(self) -> FrozenSet[Agent]:
        """The agents in this group, as a frozenset."""
        return self._members

    def sorted_members(self) -> Tuple[Agent, ...]:
        """The agents in a deterministic order (sorted by ``repr``)."""
        return tuple(sorted(self._members, key=repr))

    def __contains__(self, agent: Agent) -> bool:
        return agent in self._members

    def __iter__(self) -> Iterator[Agent]:
        return iter(self.sorted_members())

    def __len__(self) -> int:
        return len(self._members)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Group):
            return self._members == other._members
        if isinstance(other, (frozenset, set)):
            return self._members == frozenset(other)
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._members)

    def __repr__(self) -> str:
        inner = ",".join(str(a) for a in self.sorted_members())
        return f"{{{inner}}}"

    def issubset(self, other: "GroupLike") -> bool:
        """Return ``True`` if every member of this group is in ``other``."""
        return self._members.issubset(as_group(other).members)

    def union(self, other: "GroupLike") -> "Group":
        """The group containing the members of both groups."""
        return Group(self._members | as_group(other).members)

    def intersection(self, other: "GroupLike") -> "Group":
        """The group of agents common to both groups.

        Raises :class:`~repro.errors.FormulaError` if the intersection is empty,
        because empty groups are not meaningful for the knowledge operators.
        """
        return Group(self._members & as_group(other).members)

    def without(self, agent: Agent) -> "Group":
        """The group with ``agent`` removed (must remain non-empty)."""
        return Group(self._members - {agent})


GroupLike = Union[Group, Agent, Iterable[Agent]]
"""Anything accepted where a group is expected: a Group, a single agent, or an
iterable of agents."""


def as_group(value: GroupLike) -> Group:
    """Normalise ``value`` into a :class:`Group`.

    Strings are treated as single agents (not iterated character by character), which
    matches the most common usage ``K("alice", p)`` / ``C(["alice", "bob"], p)``.

    >>> as_group("alice")
    {alice}
    >>> as_group(["b", "a"])
    {a,b}
    """
    if isinstance(value, Group):
        return value
    if isinstance(value, str) or not isinstance(value, Iterable):
        return Group([value])
    return Group(value)


def as_agent(value: Agent) -> Agent:
    """Validate that ``value`` is usable as an agent label (hashable)."""
    try:
        hash(value)
    except TypeError as exc:  # pragma: no cover - defensive
        raise FormulaError(f"agent labels must be hashable, got {value!r}") from exc
    return value
