"""Fixed-point machinery (Appendix A).

Appendix A of the paper interprets a formula with a free variable ``X`` as a function
from subsets of the set of points to subsets of the set of points, and defines
``nu X. phi`` (greatest fixed point) and ``mu X. phi`` (least fixed point) via the
Knaster–Tarski theorem.  On the finite models this library works with, every monotone
function reaches its greatest (least) fixed point after finitely many iterations of

    ``A_0 = S,  A_{i+1} = f(A_i)``   (respectively ``A_0 = empty set``),

which is exactly what :func:`greatest_fixpoint` and :func:`least_fixpoint` compute.

The functions here are deliberately generic — they only need a universe and a set
transformer — so that the Kripke-structure checker and the runs-and-systems checker can
share them.
"""

from __future__ import annotations

from typing import AbstractSet, Callable, FrozenSet, Iterable, List, Tuple, TypeVar

from repro.errors import EvaluationError

__all__ = [
    "greatest_fixpoint",
    "least_fixpoint",
    "iterate_to_fixpoint",
    "is_monotone_on_chain",
    "FixpointTrace",
]

T = TypeVar("T")
SetFunction = Callable[[FrozenSet[T]], FrozenSet[T]]


class FixpointTrace(Tuple[FrozenSet[T], ...]):
    """The sequence of iterates produced while computing a fixed point.

    The trace is a tuple of frozensets; ``trace[-1]`` is the fixed point itself.  It is
    exposed so that tests and benchmarks can inspect convergence behaviour (for
    example, the muddy-children model needs exactly ``k`` unfoldings of ``E_G`` before
    the approximation of ``C_G`` stabilises).
    """

    @property
    def result(self) -> FrozenSet[T]:
        """The fixed point reached by the iteration."""
        return self[-1]

    @property
    def iterations(self) -> int:
        """How many applications of the transformer were needed to converge."""
        return len(self) - 1


def iterate_to_fixpoint(
    transformer: SetFunction,
    start: AbstractSet[T],
    max_iterations: int = 1_000_000,
    expect: "str | None" = None,
) -> FixpointTrace:
    """Apply ``transformer`` repeatedly starting from ``start`` until it stabilises.

    Returns the full :class:`FixpointTrace`.  Raises
    :class:`~repro.errors.EvaluationError` if the iteration does not stabilise within
    ``max_iterations`` steps (which, for a monotone transformer on a finite universe,
    can only happen if the transformer is buggy).

    ``expect`` turns on the runtime monotonicity guard: ``"decreasing"``
    (greatest fixpoints iterate down from the full universe) or
    ``"increasing"`` (least fixpoints iterate up from the empty set).  A
    monotone transformer always produces such a chain from those starting
    points; an iterate that leaves the chain proves the transformer is not
    monotone — the fixed point may not exist and the answer would be
    meaningless — so the iteration raises
    :class:`~repro.errors.EvaluationError` instead of silently converging.
    """
    if expect not in (None, "decreasing", "increasing"):
        raise ValueError(f"expect must be 'decreasing' or 'increasing', got {expect!r}")
    current = frozenset(start)
    trace: List[FrozenSet[T]] = [current]
    for _ in range(max_iterations):
        next_set = frozenset(transformer(current))
        if expect == "decreasing" and not next_set <= current:
            raise EvaluationError(
                "fixpoint iteration is not monotone: a greatest-fixpoint "
                "iterate gained elements; the transformer violates the "
                "positivity restriction and the fixed point may not exist"
            )
        if expect == "increasing" and not current <= next_set:
            raise EvaluationError(
                "fixpoint iteration is not monotone: a least-fixpoint "
                "iterate lost elements; the transformer violates the "
                "positivity restriction and the fixed point may not exist"
            )
        trace.append(next_set)
        if next_set == current:
            return FixpointTrace(trace)
        current = next_set
    raise EvaluationError(
        f"fixpoint iteration did not converge within {max_iterations} steps"
    )


def greatest_fixpoint(
    transformer: SetFunction,
    universe: AbstractSet[T],
    max_iterations: int = 1_000_000,
) -> FixpointTrace:
    """The greatest fixed point of ``transformer`` within ``universe``.

    ``transformer`` must be monotone increasing (the syntactic positivity
    restriction on ``nu X. phi`` formulas guarantees this, and the iteration
    *checks* it): starting from the full universe, a monotone transformer can
    only shrink its iterates, following Appendix A's characterisation
    ``gfp(f) = intersection of f^k(S)`` for downward-continuous ``f`` on finite
    sets.  An iterate that grows instead raises
    :class:`~repro.errors.EvaluationError` rather than converging to a
    meaningless answer.
    """
    return iterate_to_fixpoint(
        transformer, frozenset(universe), max_iterations, expect="decreasing"
    )


def least_fixpoint(
    transformer: SetFunction,
    universe: AbstractSet[T],
    max_iterations: int = 1_000_000,
) -> FixpointTrace:
    """The least fixed point of ``transformer``: iterate upward from the empty set.

    Like :func:`greatest_fixpoint`, the iteration enforces monotonicity at
    runtime: the chain from the empty set must only grow, and an iterate that
    loses elements raises :class:`~repro.errors.EvaluationError`.
    """
    del universe  # only needed for symmetry with greatest_fixpoint's signature
    return iterate_to_fixpoint(
        transformer, frozenset(), max_iterations, expect="increasing"
    )


def is_monotone_on_chain(
    transformer: SetFunction,
    chain: Iterable[AbstractSet[T]],
) -> bool:
    """Spot-check monotonicity of ``transformer`` along an increasing chain of sets.

    This is a testing aid: full monotonicity checking is exponential, but verifying it
    along the chains the library actually produces catches the realistic failure
    modes (e.g. accidentally negative occurrences of the fixpoint variable).
    """
    previous: FrozenSet[T] = frozenset()
    previous_image: FrozenSet[T] = frozenset(transformer(previous))
    for current in chain:
        current_frozen = frozenset(current)
        if not previous <= current_frozen:
            raise EvaluationError("is_monotone_on_chain requires an increasing chain")
        current_image = frozenset(transformer(current_frozen))
        if not previous_image <= current_image:
            return False
        previous, previous_image = current_frozen, current_image
    return True
