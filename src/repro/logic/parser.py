"""A small text parser for the epistemic language.

The parser accepts the concrete syntax used in the documentation and tests::

    p & ~q
    K_a p
    E_{a,b} (p | q)
    E^3_{a,b} p
    C_{a,b} muddy_1
    D_{a,b,c} (p -> q)
    S_{a,b} p
    true, false

and, since the parser round-trip work, the full temporal-epistemic fragment::

    <> p                       # Eventually
    [] p                       # Always
    Eeps^0.5_{a,b} p           # EveryoneEps (eps = 0.5)
    Ceps^2_{a,b} p             # CommonEps
    E<>_{a,b} p                # EveryoneDiamond
    C<>_{a,b} p                # CommonDiamond
    K@3_a p                    # KnowsAt (time 3 on a's clock)
    E@1.5_{a,b} p              # EveryoneAt
    C@2_{a,b} p                # CommonAt
    nu X. K_a (p & X)          # GreatestFixpoint; mu X. ... is LeastFixpoint

Grammar (precedence from loosest to tightest)::

    formula   := iff
    iff       := implies ( '<->' implies )*
    implies   := or ( '->' or )*            # right associative
    or        := and ( '|' and )*
    and       := unary ( '&' unary )*
    unary     := '~' unary | '<>' unary | '[]' unary | modal
    modal     := modal_op unary | atom
    modal_op  := 'K' '_' agent
               | ('E' | 'C' | 'D' | 'S') ['^' int] '_' group
               | ('Eeps' | 'Ceps') '^' number '_' group
               | ('E' | 'C') '<>' '_' group
               | 'K' '@' number '_' agent
               | ('E' | 'C') '@' number '_' group
    atom      := 'true' | 'false' | identifier | '(' formula ')'
               | ('nu' | 'mu') identifier '.' iff
    group     := '{' agent ( ',' agent )* '}' | agent
    agent     := identifier | integer
    number    := integer [ '.' digits ]

Fixpoint binders extend as far right as possible (``nu X. p & X`` binds the whole
conjunction); identifiers bound by an enclosing ``nu``/``mu`` parse as fixpoint
:class:`~repro.logic.syntax.Var` nodes, every other identifier is a proposition.
``nu``/``mu`` are only treated as binders when followed by ``name .``; elsewhere
they remain ordinary proposition names.

:func:`repro.logic.pretty.pretty` emits exactly this syntax, and
``parse(pretty(f)) == f`` for every closed formula whose names are expressible
(see the pretty module for the precise contract).
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple, Union

from repro.errors import ParseError
from repro.logic.syntax import (
    FALSE,
    TRUE,
    Always,
    And,
    Common,
    CommonAt,
    CommonDiamond,
    CommonEps,
    Distributed,
    Everyone,
    EveryoneAt,
    EveryoneDiamond,
    EveryoneEps,
    Eventually,
    Formula,
    GreatestFixpoint,
    Iff,
    Implies,
    Knows,
    KnowsAt,
    LeastFixpoint,
    Not,
    Or,
    Prop,
    Someone,
    Var,
)

__all__ = ["parse", "tokenize"]

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<iff><->)
  | (?P<implies>->)
  | (?P<eventually><>)
  | (?P<always>\[\])
  | (?P<and>&)
  | (?P<or>\|)
  | (?P<not>~|!)
  | (?P<modal>
        (?:Eeps|Ceps)\^\d+(?:\.\d+)?_(?=[A-Za-z0-9{])
      | (?:E|C)<>_(?=[A-Za-z0-9{])
      | [KEC]@\d+(?:\.\d+)?_(?=[A-Za-z0-9{])
      | [KECDS](?:\^\d+)?_(?=[A-Za-z0-9{])
    )
  | (?P<lbrace>\{)
  | (?P<rbrace>\})
  | (?P<lparen>\()
  | (?P<rparen>\))
  | (?P<comma>,)
  | (?P<dot>\.)
  | (?P<int>\d+)
  | (?P<ident>[A-Za-z][A-Za-z0-9_']*)
    """,
    re.VERBOSE,
)

Token = Tuple[str, str, int]
_MODAL_RE = re.compile(r"^(?P<letter>[KECDS])(?:\^(?P<power>\d+))?_$")
_EPS_MODAL_RE = re.compile(r"^(?P<letter>Eeps|Ceps)\^(?P<eps>\d+(?:\.\d+)?)_$")
_DIAMOND_MODAL_RE = re.compile(r"^(?P<letter>[EC])<>_$")
_AT_MODAL_RE = re.compile(r"^(?P<letter>[KEC])@(?P<stamp>\d+(?:\.\d+)?)_$")
_BINDERS = {"nu": GreatestFixpoint, "mu": LeastFixpoint}


def _as_number(text: str) -> Union[int, float]:
    """Parse a numeric operator parameter, keeping integral spellings integral."""
    return float(text) if "." in text else int(text)


def tokenize(text: str) -> List[Token]:
    """Split ``text`` into ``(kind, value, position)`` tokens.

    Raises :class:`~repro.errors.ParseError` on any character that is not part of the
    language.
    """
    tokens: List[Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise ParseError(f"unexpected character {text[position]!r}", position, text)
        kind = match.lastgroup or ""
        value = match.group()
        if kind != "ws":
            tokens.append((kind, value, position))
        position = match.end()
    return tokens


class _Parser:
    """Recursive-descent parser over the token list."""

    def __init__(self, text: str):
        self.text = text
        self.tokens = tokenize(text)
        self.index = 0
        self._bound: List[str] = []  # fixpoint variables in scope, innermost last

    # -- token utilities ------------------------------------------------------
    def peek(self) -> Optional[Token]:
        if self.index < len(self.tokens):
            return self.tokens[self.index]
        return None

    def advance(self) -> Token:
        token = self.peek()
        if token is None:
            raise ParseError("unexpected end of input", len(self.text), self.text)
        self.index += 1
        return token

    def expect(self, kind: str) -> Token:
        token = self.peek()
        if token is None or token[0] != kind:
            found = token[1] if token else "end of input"
            position = token[2] if token else len(self.text)
            raise ParseError(f"expected {kind}, found {found!r}", position, self.text)
        return self.advance()

    def accept(self, kind: str) -> Optional[Token]:
        token = self.peek()
        if token is not None and token[0] == kind:
            return self.advance()
        return None

    # -- grammar ----------------------------------------------------------------
    def parse(self) -> Formula:
        formula = self.parse_iff()
        leftover = self.peek()
        if leftover is not None:
            raise ParseError(
                f"unexpected trailing input {leftover[1]!r}", leftover[2], self.text
            )
        return formula

    def parse_iff(self) -> Formula:
        left = self.parse_implies()
        while self.accept("iff"):
            right = self.parse_implies()
            left = Iff(left, right)
        return left

    def parse_implies(self) -> Formula:
        left = self.parse_or()
        if self.accept("implies"):
            right = self.parse_implies()  # right associative
            return Implies(left, right)
        return left

    def parse_or(self) -> Formula:
        operands = [self.parse_and()]
        while self.accept("or"):
            operands.append(self.parse_and())
        if len(operands) == 1:
            return operands[0]
        return Or(tuple(operands))

    def parse_and(self) -> Formula:
        operands = [self.parse_unary()]
        while self.accept("and"):
            operands.append(self.parse_unary())
        if len(operands) == 1:
            return operands[0]
        return And(tuple(operands))

    def parse_unary(self) -> Formula:
        if self.accept("not"):
            return Not(self.parse_unary())
        if self.accept("eventually"):
            return Eventually(self.parse_unary())
        if self.accept("always"):
            return Always(self.parse_unary())
        return self.parse_modal()

    def parse_modal(self) -> Formula:
        token = self.peek()
        if token is not None and token[0] == "modal":
            return self.parse_modal_operator()
        return self.parse_atom()

    def parse_modal_operator(self) -> Formula:
        letter_token = self.expect("modal")
        eps_match = _EPS_MODAL_RE.match(letter_token[1])
        if eps_match is not None:
            eps = _as_number(eps_match.group("eps"))
            group = self.parse_group()
            body = self.parse_unary()
            cls = EveryoneEps if eps_match.group("letter") == "Eeps" else CommonEps
            return cls(group, body, eps)
        diamond_match = _DIAMOND_MODAL_RE.match(letter_token[1])
        if diamond_match is not None:
            group = self.parse_group()
            body = self.parse_unary()
            cls = EveryoneDiamond if diamond_match.group("letter") == "E" else CommonDiamond
            return cls(group, body)
        at_match = _AT_MODAL_RE.match(letter_token[1])
        if at_match is not None:
            stamp = _as_number(at_match.group("stamp"))
            if at_match.group("letter") == "K":
                agent = self.parse_agent()
                return KnowsAt(agent, self.parse_unary(), stamp)
            group = self.parse_group()
            body = self.parse_unary()
            cls = EveryoneAt if at_match.group("letter") == "E" else CommonAt
            return cls(group, body, stamp)
        match = _MODAL_RE.match(letter_token[1])
        if match is None:  # pragma: no cover - the tokenizer guarantees the shape
            raise ParseError(
                f"malformed modal operator {letter_token[1]!r}", letter_token[2], self.text
            )
        letter = match.group("letter")
        power = int(match.group("power")) if match.group("power") else 1
        if power < 1:
            raise ParseError("E^k requires k >= 1", letter_token[2], self.text)
        if letter == "K":
            agent = self.parse_agent()
            body = self.parse_unary()
            if power != 1:
                formula: Formula = body
                for _ in range(power):
                    formula = Knows(agent, formula)
                return formula
            return Knows(agent, body)
        group = self.parse_group()
        body = self.parse_unary()
        if letter == "E":
            formula = body
            for _ in range(power):
                formula = Everyone(group, formula)
            return formula
        if power != 1:
            raise ParseError(
                f"operator {letter} does not take a ^k exponent", letter_token[2], self.text
            )
        if letter == "C":
            return Common(group, body)
        if letter == "D":
            return Distributed(group, body)
        if letter == "S":
            return Someone(group, body)
        raise ParseError(f"unknown modal operator {letter!r}", letter_token[2], self.text)

    def parse_group(self) -> Tuple[Union[str, int], ...]:
        if self.accept("lbrace"):
            members = [self.parse_agent()]
            while self.accept("comma"):
                members.append(self.parse_agent())
            self.expect("rbrace")
            return tuple(members)
        return (self.parse_agent(),)

    def parse_agent(self) -> Union[str, int]:
        token = self.peek()
        if token is None:
            raise ParseError("expected an agent", len(self.text), self.text)
        if token[0] == "ident":
            self.advance()
            return token[1]
        if token[0] == "int":
            self.advance()
            return int(token[1])
        raise ParseError(f"expected an agent, found {token[1]!r}", token[2], self.text)

    def _at_binder(self) -> bool:
        """Whether the upcoming tokens spell a fixpoint binder ``nu X.``/``mu X.``."""
        token = self.peek()
        if token is None or token[0] != "ident" or token[1] not in _BINDERS:
            return False
        following = self.tokens[self.index + 1 : self.index + 3]
        return (
            len(following) == 2
            and following[0][0] == "ident"
            and following[1][0] == "dot"
        )

    def parse_binder(self) -> Formula:
        """Parse ``nu X. body`` / ``mu X. body``; the body extends maximally right."""
        binder_token = self.expect("ident")
        variable = self.expect("ident")[1]
        self.expect("dot")
        self._bound.append(variable)
        try:
            body = self.parse_iff()
        finally:
            self._bound.pop()
        return _BINDERS[binder_token[1]](variable, body)

    def parse_atom(self) -> Formula:
        token = self.peek()
        if token is None:
            raise ParseError("expected a formula", len(self.text), self.text)
        if token[0] == "lparen":
            self.advance()
            inner = self.parse_iff()
            self.expect("rparen")
            return inner
        if token[0] == "ident":
            if self._at_binder():
                return self.parse_binder()
            self.advance()
            if token[1] in self._bound:
                return Var(token[1])
            if token[1] == "true":
                return TRUE
            if token[1] == "false":
                return FALSE
            return Prop(token[1])
        if token[0] == "int":
            self.advance()
            return Prop(token[1])
        raise ParseError(f"expected a formula, found {token[1]!r}", token[2], self.text)


def parse(text: str) -> Formula:
    """Parse ``text`` into a :class:`~repro.logic.syntax.Formula`.

    >>> parse("K_a (p & q)")
    K_a[(p & q)]
    >>> parse("C_{a,b} muddy")
    C_{a,b}[muddy]
    """
    return _Parser(text).parse()
