"""A small text parser for the epistemic language.

The parser accepts the concrete syntax used in the documentation and tests::

    p & ~q
    K_a p
    E_{a,b} (p | q)
    E^3_{a,b} p
    C_{a,b} muddy_1
    D_{a,b,c} (p -> q)
    S_{a,b} p
    true, false

Grammar (precedence from loosest to tightest)::

    formula   := iff
    iff       := implies ( '<->' implies )*
    implies   := or ( '->' or )*            # right associative
    or        := and ( '|' and )*
    and       := unary ( '&' unary )*
    unary     := '~' unary | modal
    modal     := modal_op unary | atom
    modal_op  := 'K' '_' agent
               | ('E' | 'C' | 'D' | 'S') ['^' int] '_' group
    atom      := 'true' | 'false' | identifier | '(' formula ')'
    group     := '{' agent ( ',' agent )* '}' | agent
    agent     := identifier | integer

The temporal-epistemic operators (``C^eps``, ``C^<>``, ``C^T``) are intentionally not
part of the concrete syntax; they carry numeric parameters that are clearer to build
through the Python constructors (:func:`repro.logic.syntax.CEps` and friends).
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple, Union

from repro.errors import ParseError
from repro.logic.syntax import (
    FALSE,
    TRUE,
    And,
    Common,
    Distributed,
    Everyone,
    Formula,
    Iff,
    Implies,
    Knows,
    Not,
    Or,
    Prop,
    Someone,
)

__all__ = ["parse", "tokenize"]

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<iff><->)
  | (?P<implies>->)
  | (?P<and>&)
  | (?P<or>\|)
  | (?P<not>~|!)
  | (?P<modal>[KECDS](?:\^\d+)?_(?=[A-Za-z0-9{]))
  | (?P<lbrace>\{)
  | (?P<rbrace>\})
  | (?P<lparen>\()
  | (?P<rparen>\))
  | (?P<comma>,)
  | (?P<int>\d+)
  | (?P<ident>[A-Za-z][A-Za-z0-9_']*)
    """,
    re.VERBOSE,
)

Token = Tuple[str, str, int]
_MODAL_RE = re.compile(r"^(?P<letter>[KECDS])(?:\^(?P<power>\d+))?_$")


def tokenize(text: str) -> List[Token]:
    """Split ``text`` into ``(kind, value, position)`` tokens.

    Raises :class:`~repro.errors.ParseError` on any character that is not part of the
    language.
    """
    tokens: List[Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise ParseError(f"unexpected character {text[position]!r}", position, text)
        kind = match.lastgroup or ""
        value = match.group()
        if kind != "ws":
            tokens.append((kind, value, position))
        position = match.end()
    return tokens


class _Parser:
    """Recursive-descent parser over the token list."""

    def __init__(self, text: str):
        self.text = text
        self.tokens = tokenize(text)
        self.index = 0

    # -- token utilities ------------------------------------------------------
    def peek(self) -> Optional[Token]:
        if self.index < len(self.tokens):
            return self.tokens[self.index]
        return None

    def advance(self) -> Token:
        token = self.peek()
        if token is None:
            raise ParseError("unexpected end of input", len(self.text), self.text)
        self.index += 1
        return token

    def expect(self, kind: str) -> Token:
        token = self.peek()
        if token is None or token[0] != kind:
            found = token[1] if token else "end of input"
            position = token[2] if token else len(self.text)
            raise ParseError(f"expected {kind}, found {found!r}", position, self.text)
        return self.advance()

    def accept(self, kind: str) -> Optional[Token]:
        token = self.peek()
        if token is not None and token[0] == kind:
            return self.advance()
        return None

    # -- grammar ----------------------------------------------------------------
    def parse(self) -> Formula:
        formula = self.parse_iff()
        leftover = self.peek()
        if leftover is not None:
            raise ParseError(
                f"unexpected trailing input {leftover[1]!r}", leftover[2], self.text
            )
        return formula

    def parse_iff(self) -> Formula:
        left = self.parse_implies()
        while self.accept("iff"):
            right = self.parse_implies()
            left = Iff(left, right)
        return left

    def parse_implies(self) -> Formula:
        left = self.parse_or()
        if self.accept("implies"):
            right = self.parse_implies()  # right associative
            return Implies(left, right)
        return left

    def parse_or(self) -> Formula:
        operands = [self.parse_and()]
        while self.accept("or"):
            operands.append(self.parse_and())
        if len(operands) == 1:
            return operands[0]
        return Or(tuple(operands))

    def parse_and(self) -> Formula:
        operands = [self.parse_unary()]
        while self.accept("and"):
            operands.append(self.parse_unary())
        if len(operands) == 1:
            return operands[0]
        return And(tuple(operands))

    def parse_unary(self) -> Formula:
        if self.accept("not"):
            return Not(self.parse_unary())
        return self.parse_modal()

    def parse_modal(self) -> Formula:
        token = self.peek()
        if token is not None and token[0] == "modal":
            return self.parse_modal_operator()
        return self.parse_atom()

    def parse_modal_operator(self) -> Formula:
        letter_token = self.expect("modal")
        match = _MODAL_RE.match(letter_token[1])
        if match is None:  # pragma: no cover - the tokenizer guarantees the shape
            raise ParseError(
                f"malformed modal operator {letter_token[1]!r}", letter_token[2], self.text
            )
        letter = match.group("letter")
        power = int(match.group("power")) if match.group("power") else 1
        if power < 1:
            raise ParseError("E^k requires k >= 1", letter_token[2], self.text)
        if letter == "K":
            agent = self.parse_agent()
            body = self.parse_unary()
            if power != 1:
                formula: Formula = body
                for _ in range(power):
                    formula = Knows(agent, formula)
                return formula
            return Knows(agent, body)
        group = self.parse_group()
        body = self.parse_unary()
        if letter == "E":
            formula = body
            for _ in range(power):
                formula = Everyone(group, formula)
            return formula
        if power != 1:
            raise ParseError(
                f"operator {letter} does not take a ^k exponent", letter_token[2], self.text
            )
        if letter == "C":
            return Common(group, body)
        if letter == "D":
            return Distributed(group, body)
        if letter == "S":
            return Someone(group, body)
        raise ParseError(f"unknown modal operator {letter!r}", letter_token[2], self.text)

    def parse_group(self) -> Tuple[Union[str, int], ...]:
        if self.accept("lbrace"):
            members = [self.parse_agent()]
            while self.accept("comma"):
                members.append(self.parse_agent())
            self.expect("rbrace")
            return tuple(members)
        return (self.parse_agent(),)

    def parse_agent(self) -> Union[str, int]:
        token = self.peek()
        if token is None:
            raise ParseError("expected an agent", len(self.text), self.text)
        if token[0] == "ident":
            self.advance()
            return token[1]
        if token[0] == "int":
            self.advance()
            return int(token[1])
        raise ParseError(f"expected an agent, found {token[1]!r}", token[2], self.text)

    def parse_atom(self) -> Formula:
        token = self.peek()
        if token is None:
            raise ParseError("expected a formula", len(self.text), self.text)
        if token[0] == "lparen":
            self.advance()
            inner = self.parse_iff()
            self.expect("rparen")
            return inner
        if token[0] == "ident":
            self.advance()
            if token[1] == "true":
                return TRUE
            if token[1] == "false":
                return FALSE
            return Prop(token[1])
        if token[0] == "int":
            self.advance()
            return Prop(token[1])
        raise ParseError(f"expected a formula, found {token[1]!r}", token[2], self.text)


def parse(text: str) -> Formula:
    """Parse ``text`` into a :class:`~repro.logic.syntax.Formula`.

    >>> parse("K_a (p & q)")
    K_a[(p & q)]
    >>> parse("C_{a,b} muddy")
    C_{a,b}[muddy]
    """
    return _Parser(text).parse()
