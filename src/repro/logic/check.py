"""Static semantic analysis of formulas (the ``repro check`` engine).

Appendix A's fixpoint semantics and the runs-and-systems operators impose
side conditions — positivity of ``nu``/``mu`` variables, agents drawn from
the scenario's processor set, integral ``eps`` windows, timestamps within a
run's horizon — that the evaluator only discovers *during* evaluation, deep
inside a sweep.  This module checks them statically: :func:`check_formula`
walks a built :class:`~repro.logic.syntax.Formula` (polarity- and
scope-tracking), :func:`check_text` additionally folds parse/construction
failures into the same diagnostic stream, and :class:`ScenarioSignature`
carries the static shape of a scenario (agents, horizon, Kripke-vs-system
capability) that the signature-dependent checks run against.

Every finding is a :class:`~repro.analysis.diagnostics.Diagnostic` with a
stable ``REPxxx`` code; the CLI verb, the runner pre-flight and the scenario
DSL all consume the same records.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.analysis.diagnostics import (
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    Diagnostic,
)
from repro.errors import FormulaError, ParseError, PositivityError
from repro.logic.agents import Agent
from repro.logic.syntax import (
    Always,
    CommonAt,
    CommonDiamond,
    CommonEps,
    Eventually,
    EveryoneAt,
    EveryoneDiamond,
    EveryoneEps,
    Formula,
    Iff,
    Implies,
    Knows,
    KnowsAt,
    Not,
    Var,
    _Fixpoint,
    _GroupModal,
)

__all__ = [
    "ScenarioSignature",
    "TEMPORAL_NODES",
    "KIND_KRIPKE",
    "KIND_SYSTEM",
    "check_formula",
    "check_formulas",
    "check_text",
]

KIND_KRIPKE = "kripke"
"""Signature ``kind`` for scenarios that build a bare Kripke structure."""

KIND_SYSTEM = "system"
"""Signature ``kind`` for scenarios that build a system of runs."""

TEMPORAL_NODES = (
    EveryoneEps,
    CommonEps,
    EveryoneDiamond,
    CommonDiamond,
    KnowsAt,
    EveryoneAt,
    CommonAt,
    Eventually,
    Always,
)
"""Node types that require runs-and-systems semantics (time / clocks)."""

_COSTLY_UNIVERSE = 256
"""Universe size above which a doubly-nested fixpoint draws a cost warning."""


@dataclass(frozen=True)
class ScenarioSignature:
    """The statically-known shape of a scenario, for signature checks.

    A signature is computable from the registry's parameter schema alone —
    no model is built and no protocol is simulated — which is what lets the
    pre-flight reject a bad batch before instance build or pool spin-up.

    Attributes
    ----------
    agents:
        The scenario's agent/processor labels.
    kind:
        :data:`KIND_KRIPKE` or :data:`KIND_SYSTEM` — whether temporal
        operators are meaningful at all.
    horizon:
        Upper bound on clock readings/timestamps, or ``None`` when unknown.
    custom_clocks:
        ``True`` when the scenario assigns non-perfect clocks, in which case
        over-horizon timestamps are degraded to warnings (drifting clocks can
        legitimately read values a perfect clock never would).
    universe_size:
        Estimated number of worlds/points, or ``None``; feeds the fixpoint
        cost warning.
    name:
        The scenario name, used in messages; may be empty.
    """

    agents: Tuple[Agent, ...]
    kind: str = KIND_SYSTEM
    horizon: Optional[int] = None
    custom_clocks: bool = False
    universe_size: Optional[int] = None
    name: str = ""

    def describe_agents(self) -> str:
        """The agent set rendered deterministically for messages."""
        return "{" + ", ".join(str(a) for a in sorted(self.agents, key=repr)) + "}"


FormulaBatch = Union[
    Mapping[str, Formula], Sequence[Tuple[str, Formula]], Iterable[Formula]
]


def check_formula(
    formula: Formula,
    signature: Optional[ScenarioSignature] = None,
    label: str = "",
) -> List[Diagnostic]:
    """Statically check one built formula; returns its diagnostics.

    Always runs the structural checks (unbound/shadowed fixpoint variables,
    positivity, fixpoint-nesting cost); when ``signature`` is given, also runs
    the scenario-signature checks (unknown agents, over-horizon timestamps,
    fractional ``eps``, temporal operators against a Kripke scenario).
    """
    walker = _Walker(signature, label)
    walker.walk(formula, type(formula).__name__, positive=True, binders={})
    walker.cost_check()
    return walker.diagnostics


def check_formulas(
    formulas: FormulaBatch,
    signature: Optional[ScenarioSignature] = None,
) -> List[Diagnostic]:
    """Check a labelled formula batch; diagnostics carry the formula label.

    Accepts a mapping ``label -> Formula``, a sequence of ``(label, Formula)``
    pairs (the runner's normalised batch shape), or bare formulas.
    """
    diagnostics: List[Diagnostic] = []
    for label, formula in _iter_batch(formulas):
        diagnostics.extend(check_formula(formula, signature, label=label))
    return diagnostics


def check_text(
    text: str,
    signature: Optional[ScenarioSignature] = None,
    label: str = "",
) -> Tuple[Optional[Formula], List[Diagnostic]]:
    """Parse ``text`` and check it, folding parse failures into diagnostics.

    Returns ``(formula, diagnostics)``; ``formula`` is ``None`` when the text
    does not even build (``REP001`` for parse errors, ``REP003`` when the
    parser's constructors reject a positivity violation).
    """
    from repro.logic.parser import parse

    try:
        formula = parse(text)
    except PositivityError as exc:
        return None, [
            Diagnostic(
                code="REP003",
                severity=SEVERITY_ERROR,
                message=str(exc),
                path=f"Var({exc.variable!r})" if exc.variable else "",
                hint="rewrite the body so the fixpoint variable sits under an "
                "even number of negations",
                label=label or text,
            )
        ]
    except ParseError as exc:
        return None, [
            Diagnostic(
                code="REP001",
                severity=SEVERITY_ERROR,
                message=str(exc),
                hint="see the grammar in repro.logic.parser",
                label=label or text,
            )
        ]
    except FormulaError as exc:
        return None, [
            Diagnostic(
                code="REP001",
                severity=SEVERITY_ERROR,
                message=str(exc),
                label=label or text,
            )
        ]
    return formula, check_formula(formula, signature, label=label or text)


def _iter_batch(formulas: FormulaBatch) -> Iterable[Tuple[str, Formula]]:
    """Normalise the accepted batch shapes into ``(label, formula)`` pairs."""
    if isinstance(formulas, Mapping):
        return list(formulas.items())
    pairs: List[Tuple[str, Formula]] = []
    for entry in formulas:
        if isinstance(entry, tuple):
            label, formula = entry
            pairs.append((str(label), formula))
        else:
            pairs.append((str(entry), entry))
    return pairs


class _Walker:
    """One polarity- and scope-tracking traversal of a formula tree."""

    def __init__(self, signature: Optional[ScenarioSignature], label: str):
        self.signature = signature
        self.label = label
        self.diagnostics: List[Diagnostic] = []
        self.max_fixpoint_nesting = 0

    # -- reporting ---------------------------------------------------------
    def report(
        self, code: str, severity: str, message: str, path: str, hint: str = ""
    ) -> None:
        """Append one diagnostic for this walk's formula."""
        self.diagnostics.append(
            Diagnostic(
                code=code,
                severity=severity,
                message=message,
                path=path,
                hint=hint,
                label=self.label,
            )
        )

    # -- the walk ----------------------------------------------------------
    def walk(
        self,
        formula: Formula,
        path: str,
        positive: bool,
        binders: Dict[str, Optional[bool]],
        fixpoint_depth: int = 0,
    ) -> None:
        """Visit ``formula``; ``binders`` maps bound names to binder polarity."""
        if isinstance(formula, Var):
            self._visit_var(formula, path, positive, binders)
            return
        if isinstance(formula, _Fixpoint):
            self._visit_fixpoint(formula, path, positive, binders, fixpoint_depth)
            return
        if isinstance(formula, Iff):
            self._visit_iff(formula, path, positive, binders, fixpoint_depth)
            return
        self._signature_checks(formula, path)
        if isinstance(formula, Not):
            self.walk(
                formula.operand,
                self._child(path, "operand", formula.operand),
                not positive,
                binders,
                fixpoint_depth,
            )
            return
        if isinstance(formula, Implies):
            self.walk(
                formula.antecedent,
                self._child(path, "antecedent", formula.antecedent),
                not positive,
                binders,
                fixpoint_depth,
            )
            self.walk(
                formula.consequent,
                self._child(path, "consequent", formula.consequent),
                positive,
                binders,
                fixpoint_depth,
            )
            return
        for index, child in enumerate(formula.children()):
            edge = "operand" if len(formula.children()) == 1 else f"operands[{index}]"
            self.walk(
                child,
                self._child(path, edge, child),
                positive,
                binders,
                fixpoint_depth,
            )

    @staticmethod
    def _child(path: str, edge: str, child: Formula) -> str:
        """Extend a node path with an edge and the child's type name."""
        return f"{path}.{edge}.{type(child).__name__}"

    # -- node-specific visits ----------------------------------------------
    def _visit_var(
        self, formula: Var, path: str, positive: bool, binders: Dict[str, Optional[bool]]
    ) -> None:
        """Unbound-variable and positivity checks at a ``Var`` occurrence."""
        if formula.name not in binders:
            self.report(
                "REP002",
                SEVERITY_ERROR,
                f"fixpoint variable {formula.name!r} is free and unbound",
                f"{path}({formula.name!r})",
                hint=f"bind it with 'nu {formula.name}. ...' or "
                f"'mu {formula.name}. ...'",
            )
            return
        binder_polarity = binders[formula.name]
        if binder_polarity is not None and positive != binder_polarity:
            self.report(
                "REP003",
                SEVERITY_ERROR,
                f"fixpoint variable {formula.name!r} occurs under an odd number "
                "of negations relative to its binder; the induced transformer "
                "is not monotone",
                f"{path}({formula.name!r})",
                hint="rewrite the body so the variable sits under an even "
                "number of negations",
            )

    def _visit_fixpoint(
        self,
        formula: _Fixpoint,
        path: str,
        positive: bool,
        binders: Dict[str, Optional[bool]],
        fixpoint_depth: int,
    ) -> None:
        """Shadowing bookkeeping and nesting-depth tracking at a binder."""
        if formula.variable in binders:
            self.report(
                "REP004",
                SEVERITY_WARNING,
                f"fixpoint variable {formula.variable!r} shadows an outer "
                "binder of the same name; inner occurrences refer to the "
                "inner binder only",
                path,
                hint="rename one of the binders to keep the scopes readable",
            )
        depth = fixpoint_depth + 1
        self.max_fixpoint_nesting = max(self.max_fixpoint_nesting, depth)
        inner = dict(binders)
        inner[formula.variable] = positive
        self.walk(
            formula.body,
            self._child(path, "body", formula.body),
            positive,
            inner,
            depth,
        )

    def _visit_iff(
        self,
        formula: Iff,
        path: str,
        positive: bool,
        binders: Dict[str, Optional[bool]],
        fixpoint_depth: int,
    ) -> None:
        """An ``<->`` uses both polarities: bound variables may not occur."""
        free = formula.free_variables()
        for name in sorted(binders):
            if name in free:
                self.report(
                    "REP003",
                    SEVERITY_ERROR,
                    f"fixpoint variable {name!r} occurs inside an '<->', which "
                    "uses it both positively and negatively",
                    path,
                    hint="expand the '<->' into two implications and keep the "
                    "variable out of the negative one",
                )
        # Occurrences of bound variables inside are already reported above;
        # keep the names in scope (so they are not re-reported as unbound)
        # but suppress their polarity checks with a None marker.
        inner: Dict[str, Optional[bool]] = {name: None for name in binders}
        for edge, child in (("left", formula.left), ("right", formula.right)):
            self.walk(
                child,
                self._child(path, edge, child),
                positive,
                inner,
                fixpoint_depth,
            )

    # -- signature-dependent checks ------------------------------------------
    def _signature_checks(self, formula: Formula, path: str) -> None:
        """Agent-set, horizon, eps and capability checks at one node."""
        signature = self.signature
        if signature is None:
            return
        scenario = f" in scenario {signature.name!r}" if signature.name else ""
        if signature.kind == KIND_KRIPKE and isinstance(formula, TEMPORAL_NODES):
            self.report(
                "REP105",
                SEVERITY_ERROR,
                f"{type(formula).__name__} needs runs-and-systems semantics, "
                f"but{scenario or ' this scenario'} builds a bare Kripke "
                "structure with no notion of time",
                path,
                hint="use the static operators (K/E/C/D), or a system-of-runs "
                "scenario",
            )
            return
        if isinstance(formula, (Knows, KnowsAt)):
            if formula.agent not in signature.agents:
                self.report(
                    "REP101",
                    SEVERITY_ERROR,
                    f"unknown agent {formula.agent!r}{scenario}; "
                    f"known agents are {signature.describe_agents()}",
                    path,
                    hint="pick an agent from the scenario's agent set",
                )
        if isinstance(formula, _GroupModal):
            members = tuple(formula.group.members)
            known = [m for m in members if m in signature.agents]
            if not known:
                self.report(
                    "REP102",
                    SEVERITY_ERROR,
                    f"group {formula.group!r} mentions no agent of"
                    f"{scenario or ' this scenario'}; known agents are "
                    f"{signature.describe_agents()}",
                    path,
                    hint="build the group from the scenario's agent set",
                )
            else:
                for member in sorted(members, key=repr):
                    if member not in signature.agents:
                        self.report(
                            "REP101",
                            SEVERITY_ERROR,
                            f"unknown agent {member!r}{scenario}; known agents "
                            f"are {signature.describe_agents()}",
                            path,
                            hint="pick agents from the scenario's agent set",
                        )
        if isinstance(formula, (EveryoneEps, CommonEps)):
            eps = formula.eps
            if float(eps) != int(eps):
                self.report(
                    "REP104",
                    SEVERITY_ERROR,
                    f"E^eps/C^eps windows advance in whole time steps; got "
                    f"eps={eps!r}",
                    path,
                    hint="use an integer number of steps",
                )
        timestamp = getattr(formula, "timestamp", None)
        if (
            timestamp is not None
            and signature.horizon is not None
            and timestamp > signature.horizon
        ):
            severity = (
                SEVERITY_WARNING if signature.custom_clocks else SEVERITY_ERROR
            )
            qualifier = (
                "a drifting clock might still reach it"
                if signature.custom_clocks
                else "no clock ever reads it, so the operator is trivially empty"
            )
            self.report(
                "REP103",
                severity,
                f"timestamp {timestamp!r} is beyond the scenario horizon "
                f"{signature.horizon!r}{scenario}; {qualifier}",
                path,
                hint=f"use a timestamp within 0..{signature.horizon}",
            )

    # -- cost ---------------------------------------------------------------
    def cost_check(self) -> None:
        """Emit the fixpoint-nesting cost warning after the walk finishes."""
        nesting = self.max_fixpoint_nesting
        if nesting < 2:
            return
        universe = self.signature.universe_size if self.signature else None
        if universe is not None and universe >= _COSTLY_UNIVERSE:
            self.report(
                "REP201",
                SEVERITY_WARNING,
                f"{nesting} nested fixpoint binders over an estimated universe "
                f"of {universe} points; each unfolding of the outer binder "
                "re-runs the inner iteration from scratch",
                "",
                hint="restructure the formula, shrink the parameters, or use "
                "the bitset backend",
            )
        elif nesting >= 3:
            self.report(
                "REP201",
                SEVERITY_WARNING,
                f"{nesting} nested fixpoint binders; iteration cost grows "
                "multiplicatively with nesting depth",
                "",
                hint="restructure the formula to flatten the fixpoint nest",
            )
