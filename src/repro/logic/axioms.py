"""The axiom systems discussed in the paper, as checkable formula schemes.

Section 6 (Proposition 1) states that under view-based interpretations the operators
``K_i``, ``D_G`` and ``C_G`` all satisfy the modal system S5:

* A1 knowledge axiom            ``M phi -> phi``
* A2 consequence closure        ``(M phi & M(phi -> psi)) -> M psi``
* A3 positive introspection     ``M phi -> M M phi``
* A4 negative introspection     ``~M phi -> M ~M phi``
* R1 necessitation              from the validity of ``phi`` infer ``M phi``

and that common knowledge additionally satisfies

* C1 fixed-point axiom          ``C_G phi <-> E_G(phi & C_G phi)``
* C2 induction rule             from ``phi -> E_G(phi & psi)`` infer ``phi -> C_G psi``

Section 11 notes that the temporal variants ``C^eps``/``C^<>`` satisfy only A3 and R1
in general.  This module builds the corresponding *formula instances* for concrete
``phi``/``psi``/agents/groups so that a model checker can verify them on a concrete
model, which is how the test-suite and benchmark E11 exercise Proposition 1.

A "checker" here is any object exposing ``is_valid(formula) -> bool``; both
:class:`repro.kripke.checker.ModelChecker` and
:class:`repro.systems.interpretation.ViewBasedInterpretation` satisfy this contract.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Sequence

from repro.logic.agents import Agent, GroupLike, as_group
from repro.logic.syntax import (
    And,
    Common,
    Everyone,
    Formula,
    Iff,
    Implies,
    Knows,
    Not,
)

__all__ = [
    "ModalOperator",
    "knowledge_axiom",
    "consequence_closure",
    "positive_introspection",
    "negative_introspection",
    "fixed_point_axiom",
    "induction_rule_premise",
    "induction_rule_conclusion",
    "s5_instances",
    "S5Report",
    "check_s5",
    "check_common_knowledge_axioms",
]

ModalOperator = Callable[[Formula], Formula]
"""A unary operator M on formulas — e.g. ``lambda phi: K('a', phi)``."""


def knowledge_axiom(operator: ModalOperator, phi: Formula) -> Formula:
    """A1: ``M phi -> phi``."""
    return Implies(operator(phi), phi)


def consequence_closure(operator: ModalOperator, phi: Formula, psi: Formula) -> Formula:
    """A2: ``(M phi & M(phi -> psi)) -> M psi``."""
    return Implies(And((operator(phi), operator(Implies(phi, psi)))), operator(psi))


def positive_introspection(operator: ModalOperator, phi: Formula) -> Formula:
    """A3: ``M phi -> M M phi``."""
    return Implies(operator(phi), operator(operator(phi)))


def negative_introspection(operator: ModalOperator, phi: Formula) -> Formula:
    """A4: ``~M phi -> M ~M phi``."""
    return Implies(Not(operator(phi)), operator(Not(operator(phi))))


def fixed_point_axiom(group: GroupLike, phi: Formula) -> Formula:
    """C1: ``C_G phi <-> E_G(phi & C_G phi)``."""
    g = as_group(group)
    return Iff(Common(g, phi), Everyone(g, And((phi, Common(g, phi)))))


def induction_rule_premise(group: GroupLike, phi: Formula, psi: Formula) -> Formula:
    """The premise of C2: ``phi -> E_G(phi & psi)``."""
    g = as_group(group)
    return Implies(phi, Everyone(g, And((phi, psi))))


def induction_rule_conclusion(group: GroupLike, phi: Formula, psi: Formula) -> Formula:
    """The conclusion of C2: ``phi -> C_G psi``."""
    g = as_group(group)
    return Implies(phi, Common(g, psi))


def s5_instances(
    operator: ModalOperator, phi: Formula, psi: Formula
) -> Dict[str, Formula]:
    """The four S5 axiom instances for ``operator`` applied to ``phi``/``psi``."""
    return {
        "A1_knowledge": knowledge_axiom(operator, phi),
        "A2_consequence_closure": consequence_closure(operator, phi, psi),
        "A3_positive_introspection": positive_introspection(operator, phi),
        "A4_negative_introspection": negative_introspection(operator, phi),
    }


@dataclass
class S5Report:
    """The outcome of checking the S5 axioms for one operator on one model.

    ``failures`` maps axiom names to the instance formula that failed (empty when the
    operator satisfies all checked instances).
    """

    operator_name: str
    checked: int
    failures: Dict[str, Formula]

    @property
    def satisfied(self) -> bool:
        """``True`` when every checked instance was valid on the model."""
        return not self.failures


def check_s5(
    checker: "SupportsIsValid",
    operator: ModalOperator,
    formulas: Sequence[Formula],
    operator_name: str = "M",
    include_necessitation: bool = True,
) -> S5Report:
    """Check the S5 axiom instances (and optionally R1) for ``operator``.

    ``formulas`` supplies the concrete ``phi``/``psi`` instantiations; every ordered
    pair drawn from it is used for A2.  The necessitation rule R1 is checked in the
    form "for each valid ``phi`` among ``formulas``, ``M phi`` is also valid".
    """
    failures: Dict[str, Formula] = {}
    checked = 0
    for phi in formulas:
        for name, instance in (
            ("A1_knowledge", knowledge_axiom(operator, phi)),
            ("A3_positive_introspection", positive_introspection(operator, phi)),
            ("A4_negative_introspection", negative_introspection(operator, phi)),
        ):
            checked += 1
            if name not in failures and not checker.is_valid(instance):
                failures[name] = instance
        for psi in formulas:
            instance = consequence_closure(operator, phi, psi)
            checked += 1
            if "A2_consequence_closure" not in failures and not checker.is_valid(instance):
                failures["A2_consequence_closure"] = instance
        if include_necessitation and checker.is_valid(phi):
            checked += 1
            necessitated = operator(phi)
            if "R1_necessitation" not in failures and not checker.is_valid(necessitated):
                failures["R1_necessitation"] = necessitated
    return S5Report(operator_name=operator_name, checked=checked, failures=failures)


def check_common_knowledge_axioms(
    checker: "SupportsIsValid",
    group: GroupLike,
    formulas: Sequence[Formula],
) -> S5Report:
    """Check C1 and C2 for common knowledge on a concrete model.

    C2 is a rule, so it is checked in conditional form: whenever the premise
    ``phi -> E_G(phi & psi)`` is valid on the model, the conclusion ``phi -> C_G psi``
    must also be valid.
    """
    failures: Dict[str, Formula] = {}
    checked = 0
    for phi in formulas:
        instance = fixed_point_axiom(group, phi)
        checked += 1
        if "C1_fixed_point" not in failures and not checker.is_valid(instance):
            failures["C1_fixed_point"] = instance
        for psi in formulas:
            premise = induction_rule_premise(group, phi, psi)
            checked += 1
            if checker.is_valid(premise):
                conclusion = induction_rule_conclusion(group, phi, psi)
                if "C2_induction" not in failures and not checker.is_valid(conclusion):
                    failures["C2_induction"] = conclusion
    return S5Report(operator_name="C", checked=checked, failures=failures)


class SupportsIsValid:
    """Structural type for anything that can decide validity of a formula.

    Only used for documentation; duck typing is relied on at runtime.
    """

    def is_valid(self, formula: Formula) -> bool:  # pragma: no cover - interface only
        """Whether ``formula`` holds at every world/point of the model."""
        raise NotImplementedError
