"""The R2-D2 example: how delivery-time uncertainty prices each level of knowledge
(Section 8, experiment E5).

Run with:  python examples/message_delivery_knowledge.py
"""

# Allow running from a source checkout without installation or PYTHONPATH.
try:
    import repro  # noqa: F401
except ImportError:  # pragma: no cover - editable/installed runs skip this
    import pathlib
    import sys

    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro.logic import C
from repro.scenarios import r2d2
from repro.systems import ViewBasedInterpretation


def main() -> None:
    epsilon, window = 1, 5
    system = r2d2.build_uncertain_system(epsilon=epsilon, send_window=window)
    run = next(
        r for r in system.runs if r.initial_state(r2d2.R2) == 0 and "@1" in r.name
    )
    print(f"Uncertain delivery (0 or {epsilon} ticks), message sent at time 0, "
          f"actually delivered after {epsilon}.")

    print("\nThe knowledge staircase (each level costs another epsilon):")
    for step in r2d2.knowledge_staircase(system, run, epsilon, max_level=3):
        print(f"  (K_R K_D)^{step.level} sent(m) first holds at t={step.first_time} "
              f"(paper predicts t_S + {step.level}*eps = {step.predicted_time}, "
              f"+1 for the discrete observation lag)")

    print("\nCommon knowledge of sent(m) before the end of the send window:",
          r2d2.common_knowledge_ever_holds(system, run, before_time=window - 1))

    exact = r2d2.build_exact_delivery_system(epsilon=2, send_window=3)
    interp = ViewBasedInterpretation(exact)
    exact_run = next(r for r in exact.runs if r.initial_state(r2d2.R2) == 0)
    claim = C((r2d2.R2, r2d2.D2), r2d2.SENT)
    print("\nWith *exact* delivery time (no uncertainty):")
    for t in (1, 2, 3):
        print(f"  C sent(m) at t={t}: {interp.holds(claim, exact_run, t)}")


if __name__ == "__main__":
    main()
