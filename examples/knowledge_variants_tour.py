"""A tour of the variants of common knowledge: C, C^eps, C^<>, C^T
(Sections 11 and 12, experiments E7 and E9).

Run with:  python examples/knowledge_variants_tour.py
"""

# Allow running from a source checkout without installation or PYTHONPATH.
try:
    import repro  # noqa: F401
except ImportError:  # pragma: no cover - editable/installed runs skip this
    import pathlib
    import sys

    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro.analysis.clock_sync import verify_theorem12
from repro.analysis.coordination import coordination_spread, knowledge_when_acting
from repro.logic import EDiamond
from repro.scenarios import broadcast, phases
from repro.systems import ViewBasedInterpretation


def main() -> None:
    print("== Synchronous broadcast with spread 1 (Section 11) ==")
    sync = broadcast.build_synchronous_broadcast_system(latency=1, spread=1)
    interp = ViewBasedInterpretation(sync)
    sending = [r for r in sync.runs if r.receive_times()]
    eps_claim = broadcast.eps_common_knowledge(eps=2)
    print("  C^eps sent(m) at the end of every delivering run:",
          all(interp.holds(eps_claim, r, r.duration) for r in sending))

    print("\n== Asynchronous reliable broadcast ==")
    asyn = broadcast.build_asynchronous_broadcast_system(horizon=3)
    ai = ViewBasedInterpretation(asyn)
    group = (broadcast.SENDER,) + broadcast.RECEIVERS
    delivered = [
        r for r in asyn.runs
        if all(r.history(p, r.duration).received_messages() for p in broadcast.RECEIVERS)
    ]
    print("  everyone eventually knows sent(m) in fully delivered runs:",
          all(ai.holds(EDiamond(group, broadcast.SENT), r, 0) for r in delivered))
    print("  C^eps sent(m) anywhere (Theorem 11 says no):",
          bool(ai.extension(broadcast.eps_common_knowledge(eps=1))))

    print("\n== Phase-based protocol with clock skew 1 (Section 12) ==")
    system = phases.build_phase_system(phase_end=2, skew=1)
    pi = ViewBasedInterpretation(system)
    print("  worst-case decision spread:",
          coordination_spread(system, phases.GROUP, "decide"))
    verdicts = knowledge_when_acting(pi, phases.GROUP, "decide", phases.DECIDED,
                                     eps=1, timestamp=2.0)
    for name, holds in verdicts.items():
        print(f"  {name:10s} holds whenever a processor decides: {holds}")
    report = verify_theorem12(pi, phases.GROUP, phases.DECIDED, timestamp=2.0)
    print("  Theorem 12 verified on this system:", report.holds)


if __name__ == "__main__":
    main()
