"""Quickstart: the epistemic language, Kripke models, and the muddy children.

Run with:  python examples/quickstart.py
"""

# Allow running from a source checkout without installation or PYTHONPATH.
try:
    import repro  # noqa: F401
except ImportError:  # pragma: no cover - editable/installed runs skip this
    import pathlib
    import sys

    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro.kripke import ModelChecker, others_attribute_model, public_announce
from repro.logic import C, D, E, K, S, parse, prop
from repro.scenarios.muddy_children import run_muddy_children


def main() -> None:
    children = ("alice", "bob", "carol")
    model = others_attribute_model(children)
    checker = ModelChecker(model)
    m = prop("at_least_one")
    actual = (True, True, False)  # alice and bob are muddy

    print("== The hierarchy of states of group knowledge (Section 3) ==")
    for name, formula in [
        ("D m  (distributed)", D(children, m)),
        ("S m  (someone knows)", S(children, m)),
        ("E m  (everyone knows)", E(children, m)),
        ("E^2 m", E(children, m, 2)),
        ("C m  (common knowledge)", C(children, m)),
    ]:
        print(f"  {name:28s} holds at the actual world: {checker.holds(formula, actual)}")

    print("\n== The father speaks: public announcement of m (Section 2) ==")
    announced = public_announce(model, m)
    after = ModelChecker(announced)
    print("  C m after the announcement:", after.holds(C(children, m), actual))

    print("\n== Playing the rounds of questions ==")
    result = run_muddy_children(n=3, k=2)
    for outcome in result.rounds[:3]:
        answers = ", ".join(f"{child}:{'yes' if ans else 'no'}" for child, ans in outcome.answers.items())
        print(f"  round {outcome.round_number}: {answers}")
    print("  first round with a 'yes':", result.first_yes_round)

    print("\n== Parsing formulas from text ==")
    formula = parse("K_alice (muddy_bob & ~muddy_carol)")
    print(f"  {formula!r} holds at the actual world: {checker.holds(formula, actual)}")


if __name__ == "__main__":
    main()
