"""Coordinated attack: knowledge depth per delivered message and the impossibility of
a correct attacking protocol (Sections 4 and 7, experiment E3).

Run with:  python examples/coordinated_attack_demo.py
"""

# Allow running from a source checkout without installation or PYTHONPATH.
try:
    import repro  # noqa: F401
except ImportError:  # pragma: no cover - editable/installed runs skip this
    import pathlib
    import sys

    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro.analysis.attainability import verify_theorem5
from repro.scenarios.coordinated_attack import (
    GENERALS,
    INTEND,
    attack_implies_common_knowledge,
    build_handshake_system,
    knowledge_depth_after_deliveries,
    search_for_correct_policy,
)
from repro.systems.interpretation import ViewBasedInterpretation


def main() -> None:
    depth, horizon = 2, 5
    system = build_handshake_system(depth=depth, horizon=horizon)
    print(f"Handshake of depth {depth}: {len(system.runs)} possible runs "
          f"(message-loss patterns x whether A wants to attack).")

    run = max(system.runs, key=lambda r: r.messages_received_before(r.duration + 1))
    print(f"\nIn the run where every messenger arrives ({run.name}):")
    for t in run.times():
        level = knowledge_depth_after_deliveries(system, run, t)
        print(f"  time {t}: nested knowledge of A's intention has depth {level}")

    interpretation = ViewBasedInterpretation(system)
    print("\nTheorem 5 (common knowledge is immune to deliveries):",
          bool(verify_theorem5(interpretation, GENERALS, INTEND)))
    print("Proposition 4 (attacks, when joint, are common knowledge):",
          attack_implies_common_knowledge(system))

    outcomes = search_for_correct_policy(depth=depth, horizon=horizon)
    correct = [o for o in outcomes if o.is_correct]
    never = [o for o in outcomes if o.never_attacks]
    print(f"\nCorollary 6: of {len(outcomes)} threshold policies, "
          f"{len(correct)} are correct attacking protocols and {len(never)} never attack.")
    print("=> the only 'correct' behaviour is to never attack, exactly as the paper proves.")


if __name__ == "__main__":
    main()
