"""E13 — the registry-driven muddy-children sweep on both engine backends.

The sweep of the acceptance experiment: muddy children n = 2..10, the default
formula set (m, the E-hierarchy boundary, C m) at every grid point, once per
engine backend.  Models are prebuilt and shared across backends through the
runner's instance cache, so the timed work is formula evaluation (fresh
evaluator per sweep, cold formula memo); the structure-level mask caches are
warmed first, exactly as in a long-running process.

``test_bitset_beats_frozenset_on_sweep`` pins the qualitative claim — the
bitset backend is measurably faster on this sweep — independently of the
pytest-benchmark timings.
"""

import time

import pytest

from repro.experiments import ExperimentRunner

GRID = {"n": range(2, 11)}
BACKENDS = ("frozenset", "bitset")


@pytest.fixture(scope="module")
def warmed_runner():
    """A runner with every grid model prebuilt and both backends' caches warm."""
    runner = ExperimentRunner()
    for n in GRID["n"]:
        runner.instance("muddy_children", {"n": n})
    for backend in BACKENDS:
        runner.sweep("muddy_children", GRID, backends=(backend,), fresh_evaluators=True)
    return runner


@pytest.mark.parametrize("backend", BACKENDS)
def test_muddy_children_sweep(benchmark, warmed_runner, backend):
    """Time the full n=2..10 sweep (fresh evaluators, shared prebuilt models)."""
    reports = benchmark(
        warmed_runner.sweep,
        "muddy_children",
        GRID,
        backends=(backend,),
        fresh_evaluators=True,
    )
    assert len(reports) == len(list(GRID["n"]))
    for report in reports:
        by_label = {row.label: row for row in report.rows}
        # The paper's claims hold at every grid point: E^{k-1} m yes, E^k m no,
        # C m nowhere (the father has not spoken).
        assert by_label["E^1 m"].holds_at_focus is True
        assert by_label["C m"].count == 0


def _best_of(callable_, repetitions=3):
    best = float("inf")
    for _ in range(repetitions):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


def test_bitset_beats_frozenset_on_sweep(warmed_runner):
    """The acceptance claim: bitset is measurably faster on the muddy sweep."""

    def sweep(backend):
        return lambda: warmed_runner.sweep(
            "muddy_children", GRID, backends=(backend,), fresh_evaluators=True
        )

    frozenset_time = _best_of(sweep("frozenset"))
    bitset_time = _best_of(sweep("bitset"))
    # Warm-cache ratio is ~2.5-3x on CPython 3.11; assert a conservative margin
    # so the check stays robust on noisy machines.
    assert bitset_time < frozenset_time, (
        f"bitset sweep ({bitset_time * 1e3:.2f} ms) should beat "
        f"frozenset ({frozenset_time * 1e3:.2f} ms)"
    )
