"""E15 — temporal evaluation over systems of runs: mask path vs frozenset reference.

Six of the eight registered scenarios build runs-and-systems models, and their
default formula sets are dominated by the Sections 11–12 temporal-epistemic
operators (``E^eps``/``C^eps``, ``E^<>``/``C^<>``, ``K^T``/``E^T``/``C^T``) plus
the ``<>``/``[]`` future fragment.  The frozenset reference evaluates those with
per-run Python loops (``O(T^2)`` suffix scans per run, per-fixpoint-iteration
knowledge rebuilds); the bitset backend now routes them through the mask-space
fast path (``ViewBasedInterpretation._evaluate_temporal_masks`` over a run-major
:class:`repro.engine.Segmentation`).

``test_mask_path_speedup_over_reference`` pins the acceptance claim: on a
temporal-heavy horizon sweep over the ``ok_protocol`` and ``coordinated_attack``
systems, the bitset mask path is at least **3x** faster than the frozenset
reference, end-to-end (interpretation construction + cold-memo batch
evaluation; ~6-9x measured on the larger grid points alone).  Both paths agree
extension-for-extension before anything is timed.  The pytest-benchmark timings
track each path separately so ``tools/bench_report.py`` records the ablation.
"""

import time

import pytest

from repro.logic.syntax import (
    Always,
    CDiamond,
    CEps,
    CT,
    EDiamond,
    EEps,
    ET,
    Eventually,
    Knows,
    Prop,
)
from repro.scenarios.coordinated_attack import build_handshake_system
from repro.scenarios.ok_protocol import build_ok_system
from repro.systems.interpretation import ViewBasedInterpretation

BACKENDS = ("frozenset", "bitset")
SPEEDUP_FLOOR = 3.0

OK_HORIZONS = (3, 4, 5)
HANDSHAKE_SWEEP = ((3, 6), (4, 8), (5, 10))


def _temporal_batch(group, fact, horizon):
    """A batch covering every temporal and temporal-epistemic operator."""
    prop = Prop(fact)
    return [
        Eventually(prop),
        Always(prop),
        EEps(group, prop, 1),
        CEps(group, prop, 1),
        EDiamond(group, prop),
        CDiamond(group, prop),
        CT(group, prop, float(horizon - 1)),
        ET(group, prop, float(horizon // 2)),
        CEps(group, Knows(group[0], prop), 2),
        Eventually(CDiamond(group, prop)),
    ]


def _build_workload():
    """The systems of the sweep, built once (model construction is shared by
    both paths and excluded from the comparison)."""
    workload = []
    for horizon in OK_HORIZONS:
        system = build_ok_system(horizon)
        workload.append((system, _temporal_batch(("R2", "D2"), "late_or_lost", horizon)))
    for depth, horizon in HANDSHAKE_SWEEP:
        system = build_handshake_system(depth, horizon)
        workload.append((system, _temporal_batch(("A", "B"), "intend_attack", horizon)))
    return workload


def evaluate_sweep(workload, backend):
    """Evaluate every grid point's batch on a fresh interpretation (cold memo)."""
    results = []
    for system, batch in workload:
        interpretation = ViewBasedInterpretation(system, backend=backend)
        results.append(interpretation.extensions(batch))
    return results


def _best_of(callable_, repetitions=3):
    best = float("inf")
    for _ in range(repetitions):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.fixture(scope="module")
def workload():
    return _build_workload()


# -- measurements ---------------------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
def test_temporal_sweep(benchmark, workload, backend):
    """Time the full temporal horizon sweep on one backend."""
    benchmark.extra_info["worlds"] = sum(s.point_count() for s, _ in workload)
    benchmark.extra_info["backend"] = backend
    results = benchmark.pedantic(
        evaluate_sweep, args=(workload, backend), rounds=3, iterations=1, warmup_rounds=1
    )
    # Sanity: semantic containments every grid point must satisfy — the C
    # fixpoints are bounded by their first E iterate, and [] implies <>.
    for grid_point in results:
        eventually, always, eeps, ceps, ediamond, cdiamond = grid_point[:6]
        assert always <= eventually
        assert ceps <= eeps
        assert cdiamond <= ediamond
    # Something in the sweep is non-trivially true (guards against a batch of
    # vacuously empty extensions making the containments meaningless).
    assert any(grid_point[0] for grid_point in results)
    assert any(grid_point[2] for grid_point in results)


def test_mask_path_speedup_over_reference(workload, request):
    """The acceptance claim: >= 3x on the temporal sweep, bitset vs frozenset.

    Both paths agree extension-for-extension before anything is timed.  The
    wall-clock comparison is skipped in smoke runs (``--benchmark-disable``,
    used by ``tools/bench_report.py --quick``) so the quick gate stays
    timing-independent; the equivalence check always runs.
    """
    assert evaluate_sweep(workload, "bitset") == evaluate_sweep(workload, "frozenset")
    if request.config.getoption("--benchmark-disable"):
        pytest.skip("timing assertion runs only when benchmarks are enabled")
    reference_time = _best_of(lambda: evaluate_sweep(workload, "frozenset"))
    mask_time = _best_of(lambda: evaluate_sweep(workload, "bitset"))
    assert mask_time * SPEEDUP_FLOOR <= reference_time, (
        f"mask-space temporal path ({mask_time * 1e3:.1f} ms) should be at least "
        f"{SPEEDUP_FLOOR}x faster than the frozenset reference "
        f"({reference_time * 1e3:.1f} ms)"
    )
