"""E18 — supervised fault-tolerant sweeps: overhead and recovery wall-clock.

The supervision layer (``FaultPolicy`` + ``SweepSupervisor``, PR 8) exists to
keep long sweeps alive through worker crashes, hangs and poison points.  Its
two quantitative claims:

* **Near-zero overhead on the happy path** — a supervised sweep of a healthy
  grid returns rows identical to the unsupervised sweep, and costs at most a
  small constant factor over it (the serial supervised path is a retry loop
  wrapper; the parallel path adds chunk bookkeeping but no extra evaluation).
* **Recovery time scales with the watchdog timeout, not the fault** — a grid
  point hung for 600 s under ``timeout_per_point=1.0`` is reclaimed and
  quarantined in seconds: the sweep's wall-clock is bounded by the timeout
  budget, never by how long the hung worker would have slept.

Both claims are pinned here; the full fault-matrix differentials (poison
bisection, SIGKILL attribution, transient healing, resume-after-quarantine)
live in ``tests/test_supervise.py``.
"""

import json
import time

import pytest

from repro.experiments import ExperimentRunner, FaultPolicy
from repro.experiments.chaos import ENV_VAR

OVERHEAD_CEILING = 2.0
RECOVERY_CEILING_SECONDS = 30.0
HANG_SECONDS = 600.0

SCENARIO = "muddy_children"
BACKEND = "frozenset"
GRID = {"n": [2, 3, 4, 5, 6, 7]}
SMALL_GRID = {"n": [2, 3]}

POLICY = FaultPolicy(on_error="skip", retries=2, retry_backoff=0.01)


def run_sweep(policy=None, grid=None, jobs=1):
    """One end-to-end sweep — fresh runner, so nothing is cached across calls."""
    runner = ExperimentRunner()
    reports = runner.sweep(
        SCENARIO,
        grid if grid is not None else GRID,
        backends=(BACKEND,),
        jobs=jobs,
        policy=policy,
    )
    return runner, reports


def comparable_rows(reports):
    """Everything but the timing fields, which legitimately differ per run."""
    return [
        (
            report.scenario,
            tuple(sorted(report.params.items())),
            report.backend,
            report.kind,
            report.universe,
            report.focus,
            report.minimized,
            report.error,
            [tuple(sorted(row.to_dict().items())) for row in report.rows],
        )
        for report in reports
    ]


def _best_of(callable_, repetitions=2):
    best = float("inf")
    for _ in range(repetitions):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


# -- measurements ---------------------------------------------------------------


def test_supervised_clean_sweep_matches_unsupervised():
    """On a healthy grid, supervision is observably absent from the rows."""
    _, plain = run_sweep(policy=None, grid=SMALL_GRID)
    runner, supervised = run_sweep(policy=POLICY, grid=SMALL_GRID)
    assert comparable_rows(supervised) == comparable_rows(plain)
    assert runner.retries == 0
    assert runner.quarantined == 0


@pytest.mark.parametrize("supervised", (False, True), ids=("plain", "supervised"))
def test_sweep_wall_clock(benchmark, supervised, request):
    """Time the same healthy sweep with and without a fault policy attached."""
    smoke = request.config.getoption("--benchmark-disable")
    grid = SMALL_GRID if smoke else GRID
    policy = POLICY if supervised else None
    benchmark.extra_info["backend"] = BACKEND
    benchmark.extra_info["supervised"] = supervised
    _, reports = benchmark.pedantic(
        run_sweep, kwargs={"policy": policy, "grid": grid}, rounds=2, iterations=1
    )
    assert len(reports) == len(grid["n"])
    assert all(report.error is None for report in reports)


def test_supervision_overhead_bounded(request):
    """A fault policy on a healthy serial sweep costs < OVERHEAD_CEILING x."""
    if request.config.getoption("--benchmark-disable"):
        pytest.skip("timing assertion runs only when benchmarks are enabled")
    plain_time = _best_of(lambda: run_sweep(policy=None))
    supervised_time = _best_of(lambda: run_sweep(policy=POLICY))
    assert supervised_time <= plain_time * OVERHEAD_CEILING, (
        f"supervised sweep ({supervised_time * 1e3:.0f} ms) should cost at "
        f"most {OVERHEAD_CEILING}x the plain sweep ({plain_time * 1e3:.0f} ms)"
    )


def test_watchdog_recovery_is_bounded_by_the_timeout(request, monkeypatch):
    """A 600 s hang is reclaimed in seconds under ``timeout_per_point=1.0``.

    The point of the watchdog is exactly this asymmetry: the sweep's
    wall-clock tracks the *timeout budget* (timeout x chunk size, plus pool
    respawn), not the fault's duration.  Smoke runs skip it — the measurement
    IS the claim, and it costs a few real seconds of killing and respawning
    workers.
    """
    if request.config.getoption("--benchmark-disable"):
        pytest.skip("recovery timing runs only when benchmarks are enabled")
    hung_n = GRID["n"][-1]
    monkeypatch.setenv(
        ENV_VAR,
        json.dumps(
            {
                "faults": [
                    {
                        "kind": "hang",
                        "params": {"n": hung_n},
                        "hang_seconds": HANG_SECONDS,
                    }
                ]
            }
        ),
    )
    policy = FaultPolicy(on_error="skip", retries=0, timeout_per_point=1.0)
    start = time.perf_counter()
    runner, reports = run_sweep(policy=policy, jobs=2)
    elapsed = time.perf_counter() - start
    assert elapsed < RECOVERY_CEILING_SECONDS < HANG_SECONDS, (
        f"hung-point sweep took {elapsed:.1f} s; the watchdog should bound "
        f"recovery near the 1 s per-point timeout, not the {HANG_SECONDS:.0f} s hang"
    )
    quarantined = [report for report in reports if report.error is not None]
    assert [report.params["n"] for report in quarantined] == [hung_n]
    assert quarantined[0].error["kind"] == "timeout"
    assert runner.quarantined == 1
