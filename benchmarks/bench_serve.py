"""E18 — the evaluation service: warm served requests vs cold CLI one-shots.

The service's reason to exist is that answering a request from a resident
process — scenario registry imported, model instance and evaluator already
cached — must be far cheaper than booting ``repro run`` from scratch, which
pays the interpreter start, the imports, the model build and the evaluation
every single time.  This module measures both sides of that claim against
the same request and pins it:

* a warm ``POST /run`` answered by a running server beats a cold one-shot
  ``python -m repro run`` subprocess by at least :data:`SPEEDUP_FLOOR`
  (the acceptance floor is 5x; in practice the gap is orders of magnitude,
  since a served warm request skips everything but the HTTP exchange and a
  cache lookup);
* the served response is the same report the CLI prints (timing fields
  excepted) — speed without fidelity would be worthless.

The benchmark rows land in BENCH_results.json via ``tools/bench_report.py``
like every other module, giving the regression gate a served-latency
baseline.
"""

import http.client
import json
import os
import subprocess
import sys
import time

import pytest

from repro.serve import ServerThread

SPEEDUP_FLOOR = 5.0

SCENARIO = "muddy_children"
PARAMS = {"n": 4, "k": 2}
CLI_ARGS = [SCENARIO, "-p", "n=4", "-p", "k=2", "--json"]

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# Wall-clock fields legitimately differ between the two entry points.
TIMING_FIELDS = ("build_seconds", "eval_seconds")


def comparable(report_dict):
    """Everything but the timing fields, which legitimately differ."""
    return {k: v for k, v in report_dict.items() if k not in TIMING_FIELDS}


def cold_cli_run():
    """One cold one-shot CLI invocation; returns (report_dict, seconds)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(_REPO_ROOT, "src")
    start = time.perf_counter()
    completed = subprocess.run(
        [sys.executable, "-m", "repro", "run", *CLI_ARGS],
        capture_output=True,
        text=True,
        env=env,
        cwd=_REPO_ROOT,
        timeout=300,
    )
    elapsed = time.perf_counter() - start
    assert completed.returncode == 0, completed.stderr
    return json.loads(completed.stdout), elapsed


def served_run(port):
    """One ``POST /run`` against the resident server; returns (dict, seconds)."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
    try:
        start = time.perf_counter()
        conn.request(
            "POST", "/run", body=json.dumps({"scenario": SCENARIO, "params": PARAMS})
        )
        response = conn.getresponse()
        payload = response.read()
        elapsed = time.perf_counter() - start
        assert response.status == 200, payload
        return json.loads(payload), elapsed
    finally:
        conn.close()


@pytest.fixture(scope="module")
def warm_server():
    """A running server whose caches already hold the benchmark request."""
    with ServerThread() as server:
        served_run(server.port)  # build the instance, cache the evaluator
        yield server


def test_served_report_matches_cli_report(warm_server):
    """Fidelity first: the served report is the CLI's report."""
    cli_report, _seconds = cold_cli_run()
    served_report, _seconds = served_run(warm_server.port)
    assert comparable(served_report) == comparable(cli_report)


def test_warm_served_request_latency(benchmark, warm_server):
    """Time one warm served request end to end (connect, POST, read)."""
    port = warm_server.port

    def one_request():
        report, _seconds = served_run(port)
        return report

    report = benchmark(one_request)
    assert report["scenario"] == SCENARIO
    benchmark.extra_info["universe"] = report["universe"]


def test_serve_speedup_floor(warm_server, request):
    """Warm served requests beat cold CLI one-shots by >= SPEEDUP_FLOOR."""
    if request.config.getoption("--benchmark-disable"):
        pytest.skip("timing assertion runs only when benchmarks are enabled")
    _report, cold_seconds = cold_cli_run()
    warm_seconds = min(served_run(warm_server.port)[1] for _ in range(5))
    assert warm_seconds * SPEEDUP_FLOOR < cold_seconds, (
        f"warm served request ({warm_seconds * 1e3:.1f} ms) should be >= "
        f"{SPEEDUP_FLOOR}x faster than a cold CLI one-shot "
        f"({cold_seconds * 1e3:.1f} ms)"
    )
