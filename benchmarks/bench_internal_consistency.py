"""E10 — internal knowledge consistency of the eager commit interpretation (§13)."""

import pytest

from repro.scenarios.commit import (
    build_commit_system,
    eager_interpretation,
    fastest_delivery_runs,
)


def test_eager_commit_is_internally_consistent(benchmark):
    system = build_commit_system()
    eager = eager_interpretation(system)

    def check():
        inconsistent = not eager.is_knowledge_interpretation()
        witness = fastest_delivery_runs(system, delay=0)
        internally_ok = eager.is_internally_consistent_with(witness)
        return inconsistent and internally_ok

    assert benchmark(check)


def test_witness_search(benchmark):
    system = build_commit_system()
    eager = eager_interpretation(system)
    witness = benchmark(eager.find_internally_consistent_subsystem)
    assert witness is not None
