"""Shared configuration for the benchmark harness.

Each benchmark module regenerates one of the paper artifacts indexed in DESIGN.md /
EXPERIMENTS.md.  Benchmarks both *measure* (pytest-benchmark timings) and *check* the
qualitative claim being reproduced, so `pytest benchmarks/ --benchmark-only` doubles as
an end-to-end reproduction run.
"""
