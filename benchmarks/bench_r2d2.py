"""E5 — the R2–D2 knowledge staircase (Section 8)."""

import pytest

from repro.scenarios import r2d2
from repro.systems.interpretation import ViewBasedInterpretation
from repro.logic.syntax import C


@pytest.mark.parametrize("levels", [2, 3])
def test_knowledge_staircase(benchmark, levels):
    """(K_R K_D)^k sent(m) first holds k*epsilon after the send (plus the 1-tick lag)."""
    window = levels + 2
    system = r2d2.build_uncertain_system(epsilon=1, send_window=window)
    run = next(
        r
        for r in system.runs
        if r.initial_state(r2d2.R2) == 0 and "@1" in r.name
    )
    steps = benchmark(r2d2.knowledge_staircase, system, run, 1, levels, 0)
    assert [s.first_time for s in steps] == [s.predicted_time + 1 for s in steps]


def test_common_knowledge_never_in_window(benchmark):
    system = r2d2.build_uncertain_system(epsilon=1, send_window=5)
    run = next(
        r for r in system.runs if r.initial_state(r2d2.R2) == 0 and "@1" in r.name
    )
    holds = benchmark(r2d2.common_knowledge_ever_holds, system, run, 4)
    assert not holds


def test_exact_delivery_restores_common_knowledge(benchmark):
    epsilon = 2
    system = r2d2.build_exact_delivery_system(epsilon=epsilon, send_window=3)
    run = next(r for r in system.runs if r.initial_state(r2d2.R2) == 0)

    def check():
        interp = ViewBasedInterpretation(system)
        claim = C((r2d2.R2, r2d2.D2), r2d2.SENT)
        return (not interp.holds(claim, run, epsilon)) and interp.holds(
            claim, run, epsilon + 1
        )

    assert benchmark(check)
