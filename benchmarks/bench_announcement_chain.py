"""E14 — the muddy-children announcement chain: derived fast path vs seed rebuild.

The Section 2 reproduction is a *chain* of model updates: the father's public
announcement of ``m`` followed by ``n`` rounds of simultaneous public answers.
The seed drove every round cold — a from-scratch ``KripkeStructure`` rebuild per
update (full constructor validation), a fresh ``ModelChecker`` per query site,
and a per-agent ``extension``/``refine_agent`` loop.  The incremental fast path
(:class:`repro.kripke.announcement.UpdateChain` over derived structures) remaps
partition masks, world numberings and proposition extensions from the parent and
evaluates each round's ``Knows`` batch exactly once.

``test_fast_path_speedup_over_seed_rebuild`` pins the acceptance claim: the
derived-structure chain is at least **3x** faster than the seed rebuild loop on
the n=10 full chain with the bitset backend.  The pytest-benchmark timings
measure both paths on both backends (plus the fast path at n=12) so the
ablation is tracked by ``tools/bench_report.py``.
"""

import time

import pytest

from repro.kripke.builders import others_attribute_model
from repro.kripke.checker import ModelChecker
from repro.kripke.reference import refine_agent_rebuild, restrict_rebuild
from repro.logic.syntax import Knows, Prop
from repro.scenarios.muddy_children import run_muddy_children

BACKENDS = ("frozenset", "bitset")
N = 10
SPEEDUP_FLOOR = 3.0


# -- the seed rebuild path --------------------------------------------------------
# The from-scratch restrict/refine transcriptions live in repro.kripke.reference,
# shared with the differential tests so the measured baseline and the test oracle
# are the same code.


def seed_rebuild_chain(n, backend):
    """The full n-round chain exactly as the seed ran it: rebuild everything."""
    children = tuple(f"child_{i}" for i in range(n))
    actual = tuple(True for _ in children)
    model = others_attribute_model(children)
    checker = ModelChecker(model, backend=backend)
    model = restrict_rebuild(model, checker.extension(Prop("at_least_one")))
    transcript = []
    for _ in range(n):
        # One checker for the children's answers, a second inside the
        # simultaneous-answers update — the seed built both per round.
        checker = ModelChecker(model, backend=backend)
        answers = [
            checker.holds(Knows(child, Prop(f"muddy_{child}")), actual)
            for child in children
        ]
        transcript.append(answers)
        update_checker = ModelChecker(model, backend=backend)
        extensions = [
            update_checker.extension(Knows(child, Prop(f"muddy_{child}")))
            for child in children
        ]

        def answer_vector(world):
            return tuple(world in extension for extension in extensions)

        for agent in model.agents:
            model = refine_agent_rebuild(model, agent, answer_vector)
    return transcript


def fast_chain(n, backend):
    """The same chain through UpdateChain and the derived-structure fast path."""
    result = run_muddy_children(n, n, rounds=n, backend=backend)
    return [list(outcome.answers.values()) for outcome in result.rounds]


def _best_of(callable_, repetitions=3):
    best = float("inf")
    for _ in range(repetitions):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


# -- measurements ---------------------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
def test_fast_chain(benchmark, backend):
    """Time the n=10 full chain on the derived-structure fast path."""
    benchmark.extra_info["worlds"] = 2**N
    benchmark.extra_info["backend"] = backend
    transcript = benchmark.pedantic(
        fast_chain, args=(N, backend), rounds=5, iterations=1, warmup_rounds=1
    )
    # The paper's claim: everyone answers no until round n, yes in round n.
    assert all(not any(answers) for answers in transcript[:-1])
    assert all(transcript[-1])


@pytest.mark.parametrize("backend", BACKENDS)
def test_seed_rebuild_chain(benchmark, backend):
    """Time the same chain on the seed's rebuild-everything path (the baseline)."""
    benchmark.extra_info["worlds"] = 2**N
    benchmark.extra_info["backend"] = backend
    transcript = benchmark.pedantic(
        seed_rebuild_chain, args=(N, backend), rounds=2, iterations=1, warmup_rounds=1
    )
    assert all(not any(answers) for answers in transcript[:-1])
    assert all(transcript[-1])


def test_fast_chain_n12(benchmark):
    """The n=12 chain (4096 worlds) on the bitset backend — headroom tracking."""
    benchmark.extra_info["worlds"] = 2**12
    benchmark.extra_info["backend"] = "bitset"
    transcript = benchmark.pedantic(
        fast_chain, args=(12, "bitset"), rounds=2, iterations=1, warmup_rounds=0
    )
    assert all(transcript[-1])


def test_fast_path_speedup_over_seed_rebuild(request):
    """The acceptance claim: >= 3x on the n=10 bitset chain, warm.

    Both paths agree answer-for-answer before anything is timed.  The
    wall-clock comparison is skipped in smoke runs (``--benchmark-disable``,
    used by ``tools/bench_report.py --quick``) so the quick gate stays
    timing-independent; the answer-equivalence check always runs.
    """
    assert fast_chain(N, "bitset") == seed_rebuild_chain(N, "bitset")
    if request.config.getoption("--benchmark-disable"):
        pytest.skip("timing assertion runs only when benchmarks are enabled")
    seed_time = _best_of(lambda: seed_rebuild_chain(N, "bitset"), repetitions=3)
    fast_time = _best_of(lambda: fast_chain(N, "bitset"), repetitions=3)
    assert fast_time * SPEEDUP_FLOOR <= seed_time, (
        f"derived-structure chain ({fast_time * 1e3:.1f} ms) should be at least "
        f"{SPEEDUP_FLOOR}x faster than the seed rebuild path "
        f"({seed_time * 1e3:.1f} ms)"
    )
