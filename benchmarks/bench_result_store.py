"""E17 — the persistent result store: resumed sweeps vs fresh evaluation.

The store's reason to exist is that serving a recorded row must be far cheaper
than rebuilding the model and re-running the engine.  This module times the
same temporal-heavy coordinated-attack sweep twice against one store — once
cold (every grid point evaluated and recorded) and once resumed (every grid
point served from sqlite) — and pins the two qualitative claims the PR's
acceptance criteria name:

* a resumed sweep of a fully recorded grid performs **zero** formula
  evaluations (the runner's ``eval_count`` stays 0, and every report carries
  ``from_store=True``), serially and under ``jobs=2``;
* the resumed sweep's rows are identical to the fresh sweep's (timing fields
  excepted), and it is at least :data:`SPEEDUP_FLOOR` times faster end-to-end
  — deserializing JSON out of sqlite simply cannot lose to re-running the
  ``O(T^2)``-per-run temporal reference evaluator, or the store is broken.
"""

import time

import pytest

from repro.experiments import ExperimentRunner, ResultStore

SPEEDUP_FLOOR = 3.0

SCENARIO = "coordinated_attack"
BACKEND = "frozenset"  # the reference path: evaluation-dominated grid points
GRID = {"depth": [4], "horizon": list(range(8, 16))}
SMALL_GRID = {"depth": [2], "horizon": [3, 4]}


def comparable_rows(reports):
    """Everything but the timing/provenance fields, which legitimately differ."""
    return [
        (
            report.scenario,
            tuple(sorted(report.params.items())),
            report.backend,
            report.kind,
            report.universe,
            report.focus,
            report.minimized,
            [tuple(sorted(row.to_dict().items())) for row in report.rows],
        )
        for report in reports
    ]


@pytest.fixture(scope="module")
def grid(request):
    smoke = request.config.getoption("--benchmark-disable")
    return SMALL_GRID if smoke else GRID


@pytest.fixture(scope="module")
def recorded_store(tmp_path_factory, grid):
    """A store holding the whole grid, plus the fresh run's reports and timing."""
    path = tmp_path_factory.mktemp("store") / "results.sqlite"
    store = ResultStore(str(path))
    runner = ExperimentRunner(store=store)
    start = time.perf_counter()
    reports = runner.sweep(SCENARIO, grid, backends=(BACKEND,))
    fresh_seconds = time.perf_counter() - start
    assert runner.eval_count == len(reports) > 0
    yield store, reports, fresh_seconds
    store.close()


def test_resumed_sweep_is_zero_eval_and_identical(recorded_store, grid):
    """The acceptance claim: resume = zero evaluations, identical rows."""
    store, fresh_reports, _ = recorded_store
    runner = ExperimentRunner(store=store)
    resumed = runner.sweep(SCENARIO, grid, backends=(BACKEND,))
    assert runner.eval_count == 0
    assert runner.store_hits == len(resumed)
    assert all(report.from_store for report in resumed)
    assert comparable_rows(resumed) == comparable_rows(fresh_reports)


def test_resumed_sweep_is_zero_eval_under_jobs(recorded_store, grid):
    """A fully recorded grid never even starts the worker pool."""
    store, fresh_reports, _ = recorded_store
    runner = ExperimentRunner(store=store)
    resumed = runner.sweep(SCENARIO, grid, backends=(BACKEND,), jobs=2)
    assert runner.eval_count == 0
    assert comparable_rows(resumed) == comparable_rows(fresh_reports)


def test_resumed_sweep_wall_clock(benchmark, recorded_store, grid):
    """Time serving the whole grid from the store (cold runner each round)."""
    store, _, _ = recorded_store

    def resumed_sweep():
        return ExperimentRunner(store=store).sweep(
            SCENARIO, grid, backends=(BACKEND,)
        )

    benchmark.extra_info["backend"] = BACKEND
    reports = benchmark.pedantic(resumed_sweep, rounds=3, iterations=1)
    assert all(report.from_store for report in reports)
    benchmark.extra_info["worlds"] = sum(report.universe for report in reports)


def test_store_speedup_floor(recorded_store, grid, request):
    """The resumed sweep beats fresh evaluation by >= SPEEDUP_FLOOR end-to-end."""
    if request.config.getoption("--benchmark-disable"):
        pytest.skip("timing assertion runs only when benchmarks are enabled")
    store, _, fresh_seconds = recorded_store
    best = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        ExperimentRunner(store=store).sweep(SCENARIO, grid, backends=(BACKEND,))
        best = min(best, time.perf_counter() - start)
    assert best * SPEEDUP_FLOOR < fresh_seconds, (
        f"resumed sweep ({best * 1e3:.1f} ms) should be >= {SPEEDUP_FLOOR}x "
        f"faster than fresh evaluation ({fresh_seconds * 1e3:.1f} ms)"
    )
