"""E15 — worklist bisimulation and the minimisation on/off ablation.

Two questions, one module:

* how fast is the bitset worklist partition refinement
  (:func:`repro.kripke.bisimulation.bisimulation_classes`) on structures with
  and without collapsible state, and
* what does minimisation buy (or cost) for model checking — the on/off ablation
  the bisimulation module's docstring promises.

The redundant workload is an "inflated" muddy-children model: every world is
duplicated into ``COPIES`` indistinguishable clones, which the quotient must
fold back together (a stand-in for the duplicated points that runs-and-systems
translations produce).  The ablation checks the same formula batch on the full
model and on its quotient and asserts the answers agree; the timings land in
``BENCH_results.json`` via ``tools/bench_report.py``.
"""

import pytest

from repro.experiments import ExperimentRunner
from repro.kripke.bisimulation import bisimulation_classes, quotient
from repro.kripke.builders import others_attribute_model
from repro.kripke.checker import ModelChecker
from repro.kripke.structure import KripkeStructure
from repro.logic.syntax import C, E, Prop

CHILDREN = tuple(f"child_{i}" for i in range(7))
COPIES = 4


def _inflated_muddy_model():
    """The 7-child muddy model with every world cloned COPIES times (512 worlds)."""
    base = others_attribute_model(CHILDREN)
    worlds = [(world, copy) for world in base.worlds for copy in range(COPIES)]
    valuation = {(world, copy): base.facts_at(world) for world, copy in worlds}
    partitions = {
        agent: [
            {(world, copy) for world in block for copy in range(COPIES)}
            for block in base.partition(agent)
        ]
        for agent in base.agents
    }
    return KripkeStructure(worlds, base.agents, valuation, partitions)


def _formula_batch():
    m = Prop("at_least_one")
    return [E(CHILDREN, m, level) for level in range(1, 5)] + [C(CHILDREN, m)]


@pytest.fixture(scope="module")
def inflated_model():
    return _inflated_muddy_model()


def test_worklist_refinement_on_inflated_model(benchmark, inflated_model):
    """Partition refinement where every block must split down to the clones."""
    benchmark.extra_info["worlds"] = len(inflated_model)
    classes = benchmark(bisimulation_classes, inflated_model)
    assert len(classes) == 2 ** len(CHILDREN)


def test_worklist_refinement_on_minimal_model(benchmark):
    """Partition refinement on an already-minimal model (the hard, no-win case)."""
    model = others_attribute_model(tuple(f"c{i}" for i in range(8)))
    benchmark.extra_info["worlds"] = len(model)
    classes = benchmark(bisimulation_classes, model)
    assert len(classes) == len(model)  # every world is its own class


def test_checking_without_minimisation(benchmark, inflated_model):
    """Ablation arm 1: check the formula batch on the full 512-world model."""
    benchmark.extra_info["worlds"] = len(inflated_model)
    benchmark.extra_info["backend"] = "bitset"

    def check():
        return ModelChecker(inflated_model, backend="bitset").extensions(
            _formula_batch()
        )

    extensions = benchmark(check)
    assert len(extensions) == len(_formula_batch())


def test_checking_with_minimisation(benchmark, inflated_model):
    """Ablation arm 2: quotient first, then check on the 128-class model.

    The timed body includes the partition refinement itself, so the two arms
    compare end-to-end cost, not just the final query.
    """
    benchmark.extra_info["worlds"] = len(inflated_model)
    benchmark.extra_info["backend"] = "bitset"

    def minimise_and_check():
        reduced, class_of = quotient(inflated_model)
        return reduced, class_of, ModelChecker(reduced, backend="bitset").extensions(
            _formula_batch()
        )

    reduced, class_of, reduced_extensions = benchmark(minimise_and_check)
    assert len(reduced) == 2 ** len(CHILDREN)
    # The ablation is only meaningful if both arms give the same answers.
    full_extensions = ModelChecker(inflated_model, backend="bitset").extensions(
        _formula_batch()
    )
    for full, reduced_ext in zip(full_extensions, reduced_extensions):
        for world in inflated_model.worlds:
            assert (world in full) == (class_of[world] in reduced_ext)


def test_runner_minimize_flag_round_trip():
    """The runner's minimize=True arm agrees with minimize=False at the focus."""
    runner = ExperimentRunner()
    plain = runner.run("muddy_children", {"n": 6, "k": 3}, backend="bitset")
    reduced = runner.run(
        "muddy_children", {"n": 6, "k": 3}, backend="bitset", minimize=True
    )
    assert reduced.minimized and not plain.minimized
    assert [row.holds_at_focus for row in plain.rows] == [
        row.holds_at_focus for row in reduced.rows
    ]
    assert [row.satisfiable for row in plain.rows] == [
        row.satisfiable for row in reduced.rows
    ]
