"""E7 — epsilon-common knowledge and eventual common knowledge (Section 11)."""

import pytest

from repro.logic.syntax import C, E, EDiamond
from repro.scenarios import broadcast, ok_protocol
from repro.systems.interpretation import ViewBasedInterpretation


def test_synchronous_broadcast_eps_common_knowledge(benchmark):
    system = broadcast.build_synchronous_broadcast_system(latency=1, spread=1)
    interp = ViewBasedInterpretation(system)

    def check():
        claim = broadcast.eps_common_knowledge(eps=2)
        sending = [r for r in system.runs if r.receive_times()]
        eps_ok = all(interp.holds(claim, run, run.duration) for run in sending)
        no_plain_ck_early = all(
            point.time > 2 for point in interp.extension(C((broadcast.SENDER,) + broadcast.RECEIVERS, broadcast.SENT))
        )
        return eps_ok and no_plain_ck_early

    assert benchmark(check)


def test_asynchronous_broadcast_eventual_knowledge(benchmark):
    system = broadcast.build_asynchronous_broadcast_system(horizon=3)
    interp = ViewBasedInterpretation(system)
    group = (broadcast.SENDER,) + broadcast.RECEIVERS

    def check():
        claim = EDiamond(group, broadcast.SENT)
        delivered = [
            r
            for r in system.runs
            if all(r.history(p, r.duration).received_messages() for p in broadcast.RECEIVERS)
        ]
        everyone_eventually = all(interp.holds(claim, r, 0) for r in delivered)
        no_eps = interp.extension(broadcast.eps_common_knowledge(eps=1)) == frozenset()
        return everyone_eventually and no_eps

    assert benchmark(check)


def test_ok_protocol_failure_driven_knowledge(benchmark):
    system = ok_protocol.build_ok_system(horizon=2)
    interp = ViewBasedInterpretation(system)
    group = (ok_protocol.LEFT, ok_protocol.RIGHT)

    def check():
        psi = ok_protocol.psi_formula()
        all_lost = next(r for r in system.runs if r.no_messages_received())
        mutual = interp.holds(E(group, psi), all_lost, 2)
        prompt = [
            r
            for r in system.runs
            if r.receive_times()
            and all(ok_protocol.DELAYED.name not in r.facts_at(t) for t in r.times())
        ]
        claim = ok_protocol.eps_common_knowledge_of_psi(eps=1)
        prevented = not any(
            interp.holds(claim, r, t) for r in prompt for t in r.times()
        )
        return mutual and prevented

    assert benchmark(check)
