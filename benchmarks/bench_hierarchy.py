"""E2 — the hierarchy of states of group knowledge (Section 3)."""

import pytest

from repro.analysis.hierarchy import check_hierarchy, hierarchy_collapses
from repro.kripke.builders import others_attribute_model, shared_memory_model
from repro.kripke.checker import ModelChecker
from repro.logic.syntax import prop

M = prop("at_least_one")


@pytest.mark.parametrize("n", [4, 6, 8])
def test_hierarchy_is_strict_on_distributed_models(benchmark, n):
    children = tuple(f"c{i}" for i in range(n))
    checker = ModelChecker(others_attribute_model(children))
    report = benchmark(check_hierarchy, checker, children, M, 3)
    assert report.inclusions_hold
    assert report.strict_levels


def test_hierarchy_collapses_under_shared_memory(benchmark):
    model = shared_memory_model(
        ["a", "b", "c"],
        [f"w{i}" for i in range(16)],
        lambda w: {"p"} if w.endswith(("1", "3", "5")) else set(),
    )
    checker = ModelChecker(model)
    assert benchmark(hierarchy_collapses, checker, ["a", "b", "c"], prop("p"))
