"""E11 + ablations — S5/C1/C2 axiom checking, fixpoint vs. reachability evaluation of
common knowledge, bisimulation minimisation, and view comparison (DESIGN.md §5).

Also the engine-backend comparison: the same common-knowledge queries on the
``frozenset`` reference backend vs. the ``bitset`` backend (see ``repro.engine``),
including the 256-world fixpoint query that headlines the bitset speedup."""

import pytest

from repro.kripke.bisimulation import minimize
from repro.kripke.builders import others_attribute_model
from repro.kripke.checker import CommonKnowledgeStrategy, ModelChecker
from repro.logic.axioms import check_common_knowledge_axioms, check_s5
from repro.logic.syntax import C, D, E, K, prop
from repro.scenarios.coordinated_attack import build_handshake_system
from repro.systems.interpretation import ViewBasedInterpretation
from repro.systems.views import CompleteHistoryView, RecentEventsView, TrivialView

M = prop("at_least_one")
CHILDREN = ("a", "b", "c", "d")


def test_s5_axioms_for_knowledge_and_common_knowledge(benchmark):
    checker = ModelChecker(others_attribute_model(CHILDREN))
    formulas = [M, prop("muddy_a"), K("a", M), E(CHILDREN, M)]

    def check():
        k_report = check_s5(checker, lambda phi: K("a", phi), formulas, "K_a")
        d_report = check_s5(checker, lambda phi: D(CHILDREN, phi), formulas, "D")
        c_report = check_s5(checker, lambda phi: C(CHILDREN, phi), formulas, "C")
        fp_report = check_common_knowledge_axioms(checker, CHILDREN, formulas[:2])
        return all(r.satisfied for r in (k_report, d_report, c_report, fp_report))

    assert benchmark(check)


@pytest.mark.parametrize("backend", ["frozenset", "bitset"])
@pytest.mark.parametrize(
    "strategy",
    [CommonKnowledgeStrategy.REACHABILITY, CommonKnowledgeStrategy.FIXPOINT],
)
def test_common_knowledge_evaluation_strategies(benchmark, strategy, backend):
    """Ablation: reachability vs. fixpoint evaluation of C (App. A), per backend."""
    model = others_attribute_model(tuple(f"c{i}" for i in range(6)))
    formula = C(tuple(f"c{i}" for i in range(6)), M)

    def evaluate():
        checker = ModelChecker(model, strategy, backend=backend)
        return checker.extension(formula)

    extension = benchmark(evaluate)
    assert extension == frozenset()


@pytest.mark.parametrize("backend", ["frozenset", "bitset"])
def test_common_knowledge_fixpoint_large_structure(benchmark, backend):
    """Backend comparison on the headline query: the C_G greatest-fixpoint
    iteration of Appendix A on a 256-world muddy-children structure.

    The acceptance bar for the bitset engine is >= 3x over the frozenset
    reference on this query; CHANGES.md records the measured ratio."""
    agents = tuple(f"c{i}" for i in range(8))  # 2^8 = 256 worlds
    model = others_attribute_model(agents)
    formula = C(agents, M)
    checker = ModelChecker(model, CommonKnowledgeStrategy.FIXPOINT, backend=backend)

    def evaluate():
        checker.clear_cache()
        return checker.extension(formula)

    extension = benchmark(evaluate)
    assert extension == frozenset()


def test_bisimulation_minimisation(benchmark):
    """Ablation: the muddy-children model is already bisimulation-minimal."""
    model = others_attribute_model(CHILDREN)
    reduced = benchmark(minimize, model)
    assert len(reduced) == len(model)


@pytest.mark.parametrize(
    "view",
    [CompleteHistoryView(), RecentEventsView(window=1), TrivialView()],
    ids=["complete-history", "recent-events", "trivial"],
)
def test_view_comparison(benchmark, view):
    """Ablation: coarser views ascribe no more knowledge than the complete history."""
    system = build_handshake_system(depth=2, horizon=5)
    fine = ViewBasedInterpretation(system, view=CompleteHistoryView())
    fact = prop("intend_attack")
    fine_extension = fine.extension(K("B", fact))

    def evaluate():
        interp = ViewBasedInterpretation(system, view=view)
        return interp.extension(K("B", fact))

    coarse_extension = benchmark(evaluate)
    assert coarse_extension <= fine_extension
