"""E11 + ablations — S5/C1/C2 axiom checking, fixpoint vs. reachability evaluation of
common knowledge, bisimulation minimisation, and view comparison (DESIGN.md §5)."""

import pytest

from repro.kripke.bisimulation import minimize
from repro.kripke.builders import others_attribute_model
from repro.kripke.checker import CommonKnowledgeStrategy, ModelChecker
from repro.logic.axioms import check_common_knowledge_axioms, check_s5
from repro.logic.syntax import C, D, E, K, prop
from repro.scenarios.coordinated_attack import build_handshake_system
from repro.systems.interpretation import ViewBasedInterpretation
from repro.systems.views import CompleteHistoryView, RecentEventsView, TrivialView

M = prop("at_least_one")
CHILDREN = ("a", "b", "c", "d")


def test_s5_axioms_for_knowledge_and_common_knowledge(benchmark):
    checker = ModelChecker(others_attribute_model(CHILDREN))
    formulas = [M, prop("muddy_a"), K("a", M), E(CHILDREN, M)]

    def check():
        k_report = check_s5(checker, lambda phi: K("a", phi), formulas, "K_a")
        d_report = check_s5(checker, lambda phi: D(CHILDREN, phi), formulas, "D")
        c_report = check_s5(checker, lambda phi: C(CHILDREN, phi), formulas, "C")
        fp_report = check_common_knowledge_axioms(checker, CHILDREN, formulas[:2])
        return all(r.satisfied for r in (k_report, d_report, c_report, fp_report))

    assert benchmark(check)


@pytest.mark.parametrize(
    "strategy",
    [CommonKnowledgeStrategy.REACHABILITY, CommonKnowledgeStrategy.FIXPOINT],
)
def test_common_knowledge_evaluation_strategies(benchmark, strategy):
    """Ablation: reachability-based vs. fixpoint-based evaluation of C (App. A)."""
    model = others_attribute_model(tuple(f"c{i}" for i in range(6)))
    formula = C(tuple(f"c{i}" for i in range(6)), M)

    def evaluate():
        checker = ModelChecker(model, strategy)
        return checker.extension(formula)

    extension = benchmark(evaluate)
    assert extension == frozenset()


def test_bisimulation_minimisation(benchmark):
    """Ablation: the muddy-children model is already bisimulation-minimal."""
    model = others_attribute_model(CHILDREN)
    reduced = benchmark(minimize, model)
    assert len(reduced) == len(model)


@pytest.mark.parametrize(
    "view",
    [CompleteHistoryView(), RecentEventsView(window=1), TrivialView()],
    ids=["complete-history", "recent-events", "trivial"],
)
def test_view_comparison(benchmark, view):
    """Ablation: coarser views ascribe no more knowledge than the complete history."""
    system = build_handshake_system(depth=2, horizon=5)
    fine = ViewBasedInterpretation(system, view=CompleteHistoryView())
    fact = prop("intend_attack")
    fine_extension = fine.extension(K("B", fact))

    def evaluate():
        interp = ViewBasedInterpretation(system, view=view)
        return interp.extension(K("B", fact))

    coarse_extension = benchmark(evaluate)
    assert coarse_extension <= fine_extension
