"""E9 — timestamped common knowledge and Theorem 12 (Section 12)."""

import pytest

from repro.analysis.clock_sync import verify_theorem12
from repro.analysis.coordination import coordination_spread, knowledge_when_acting
from repro.scenarios import phases
from repro.systems.interpretation import ViewBasedInterpretation


@pytest.mark.parametrize("skew", [0, 1, 2])
def test_theorem12_under_various_skews(benchmark, skew):
    system = phases.build_phase_system(phase_end=2, skew=skew)
    interp = ViewBasedInterpretation(system)
    report = benchmark(
        verify_theorem12, interp, phases.GROUP, phases.DECIDED, 2.0
    )
    assert report.holds
    assert coordination_spread(system, phases.GROUP, "decide") == skew


def test_timestamped_common_knowledge_when_deciding(benchmark):
    system = phases.build_phase_system(phase_end=2, skew=1)
    interp = ViewBasedInterpretation(system)
    verdicts = benchmark(
        knowledge_when_acting,
        interp,
        phases.GROUP,
        "decide",
        phases.DECIDED,
        1,
        2.0,
    )
    assert verdicts["C^T=2.0"] and verdicts["C<>"]
