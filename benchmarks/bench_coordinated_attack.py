"""E3 / E8 — coordinated attack: knowledge depth, Proposition 4, Corollary 6,
Proposition 10 (Sections 4, 7, 11)."""

import pytest

from repro.analysis.attainability import verify_theorem5, verify_theorem9
from repro.logic.syntax import prop
from repro.scenarios.coordinated_attack import (
    GENERALS,
    INTEND,
    attack_implies_common_knowledge,
    build_handshake_system,
    knowledge_depth_after_deliveries,
    search_for_correct_policy,
)
from repro.systems.interpretation import ViewBasedInterpretation


@pytest.mark.parametrize("depth", [1, 2, 3])
def test_knowledge_depth_equals_messages_delivered(benchmark, depth):
    """Each delivered message adds exactly one level of nested knowledge of A's intent."""
    horizon = 2 * depth + 1
    system = build_handshake_system(depth=depth, horizon=horizon)
    run = max(system.runs, key=lambda r: r.messages_received_before(r.duration + 1))

    measured = benchmark(
        knowledge_depth_after_deliveries, system, run, run.duration
    )
    assert measured == run.messages_received_before(run.duration + 1) == depth


@pytest.mark.parametrize("depth", [2, 3])
def test_no_correct_threshold_policy_exists(benchmark, depth):
    """Corollary 6: every threshold policy either never attacks or is uncoordinated."""
    outcomes = benchmark(search_for_correct_policy, depth, 2 * depth + 1)
    assert outcomes and not any(o.is_correct for o in outcomes)


def test_proposition4_and_theorems_on_handshake(benchmark):
    """Prop 4 + Theorem 5 + Theorem 9 (eventual variant, Prop 10) on one system."""
    system = build_handshake_system(depth=2, horizon=5)

    def verify():
        interp = ViewBasedInterpretation(system)
        return (
            attack_implies_common_knowledge(system),
            bool(verify_theorem5(interp, GENERALS, INTEND)),
            bool(verify_theorem9(interp, GENERALS, prop("both_attack"), eps=None)),
        )

    results = benchmark(verify)
    assert all(results)
