"""E4 / E6 — attainability of common knowledge: Theorems 5, 7, 8, 11; Propositions
13 and 15 (Section 8, Appendix B)."""

import pytest

from repro.analysis.attainability import (
    verify_proposition13,
    verify_theorem11,
    verify_theorem5,
    verify_theorem8,
)
from repro.logic.syntax import prop
from repro.simulation.network import Asynchronous, BoundedUncertain, Unreliable
from repro.simulation.protocol import Action, Protocol
from repro.simulation.simulator import simulate
from repro.systems.conditions import satisfies_ng1, satisfies_ng2, satisfies_unbounded_delivery
from repro.systems.interpretation import ViewBasedInterpretation

DELIVERED = prop("delivered")


class _SendOnce(Protocol):
    def step(self, processor, history, time):
        if processor == "A" and time == 0 and not history.sent_messages():
            return Action.send("B", "m")
        return Action.nothing()


def _delivered_fact(run):
    times = [
        t
        for t in run.times()
        if any(type(e).__name__ == "ReceiveEvent" for e in run.events_at("B", t))
    ]
    if not times:
        return {}
    return {t: {"delivered"} for t in range(times[0], run.duration + 1)}


def _system(delivery, duration):
    return simulate(
        _SendOnce(), ["A", "B"], duration=duration, delivery=delivery,
        fact_rules=[_delivered_fact],
    )


def test_theorem5_unreliable_channel(benchmark):
    system = _system(Unreliable(delay=1), duration=4)
    assert satisfies_ng1(system) and satisfies_ng2(system)
    interp = ViewBasedInterpretation(system)
    assert benchmark(lambda: bool(verify_theorem5(interp, ("A", "B"), DELIVERED)))


def test_theorem7_and_11_asynchronous_channel(benchmark):
    system = _system(Asynchronous(1), duration=4)
    assert satisfies_unbounded_delivery(system)
    interp = ViewBasedInterpretation(system)

    def verify():
        return bool(verify_theorem5(interp, ("A", "B"), DELIVERED)) and bool(
            verify_theorem11(interp, ("A", "B"), DELIVERED, eps=1)
        )

    assert benchmark(verify)


def test_theorem8_bounded_uncertain_delivery(benchmark):
    """E6: delivery jitter makes the initial point reachable, so no new CK ever arises."""
    system = _system(BoundedUncertain(1, 2), duration=4)
    interp = ViewBasedInterpretation(system)

    def verify():
        return bool(verify_proposition13(interp, ("A", "B"), DELIVERED)) and bool(
            verify_theorem8(interp, ("A", "B"), DELIVERED)
        )

    assert benchmark(verify)
