"""E16 — sharded parallel sweeps: ``sweep(jobs=N)`` vs the serial grid walk.

The headline experiment shape of the paper is a parameter sweep — muddy
children over ``n``, coordinated attack over the horizon — and PRs 1–4 made
each *grid point* fast while ``ExperimentRunner.sweep`` still walked the grid
one point at a time on one core.  ``sweep(jobs=N)`` (PR 5) shards the grid
over a process pool: workers rebuild scenario instances from the registry by
parameter key, evaluate, and ship plain report rows back, merged in
deterministic grid order.

``test_parallel_speedup_four_workers`` pins the acceptance claim: on a
temporal-heavy coordinated-attack horizon sweep (frozenset reference backend,
whose per-run ``O(T^2)`` temporal scans dominate, ~0.3-0.5 s per grid point),
``jobs=4`` is at least **2x** faster end-to-end than ``jobs=1``.  The claim is
a statement about parallel hardware, so the wall-clock assertion runs only
when at least four CPUs are actually available to this process (and never in
``--benchmark-disable`` smoke runs); the row-for-row equivalence of the
parallel and serial sweeps is asserted unconditionally, here and — across
backends and scenario kinds — in ``tests/test_parallel_sweep.py``.
"""

import os
import time

import pytest

from repro.experiments import ExperimentRunner
from repro.logic.syntax import CT, CDiamond, CEps, EDiamond, EEps, Always, Eventually, Knows, Prop

SPEEDUP_FLOOR = 2.0
JOBS = 4

SCENARIO = "coordinated_attack"
BACKEND = "frozenset"  # the temporal reference path: eval-dominated grid points
GRID = {"depth": [20], "horizon": list(range(34, 50, 2))}
SMALL_GRID = {"depth": [2, 3], "horizon": [4, 5]}

_GROUP = ("A", "B")
_FACT = Prop("intend_attack")
FORMULAS = [
    ("ev", Eventually(_FACT)),
    ("alw", Always(_FACT)),
    ("eeps", EEps(_GROUP, _FACT, 1)),
    ("ceps", CEps(_GROUP, _FACT, 1)),
    ("ed", EDiamond(_GROUP, _FACT)),
    ("cd", CDiamond(_GROUP, _FACT)),
    ("ct", CT(_GROUP, _FACT, 3.0)),
    ("ceps_k", CEps(_GROUP, Knows("A", _FACT), 2)),
]


def run_sweep(jobs, grid=None):
    """One end-to-end sweep — fresh runner, so nothing is cached across calls."""
    return ExperimentRunner().sweep(
        SCENARIO,
        grid if grid is not None else GRID,
        formulas=FORMULAS,
        backends=(BACKEND,),
        jobs=jobs,
    )


def comparable_rows(reports):
    """Everything but the timing fields, which legitimately differ per run."""
    return [
        (
            report.scenario,
            tuple(sorted(report.params.items())),
            report.backend,
            report.kind,
            report.universe,
            report.focus,
            report.minimized,
            [tuple(sorted(row.to_dict().items())) for row in report.rows],
        )
        for report in reports
    ]


def _usable_cpus():
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _best_of(callable_, repetitions=2):
    best = float("inf")
    for _ in range(repetitions):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


# -- measurements ---------------------------------------------------------------


def test_parallel_matches_serial_rows():
    """Sharded execution is observably the serial sweep: same reports, same order."""
    serial = run_sweep(jobs=1, grid=SMALL_GRID)
    parallel = run_sweep(jobs=JOBS, grid=SMALL_GRID)
    assert comparable_rows(parallel) == comparable_rows(serial)


@pytest.mark.parametrize("jobs", (1, JOBS))
def test_temporal_sweep_wall_clock(benchmark, jobs, request):
    """Time the temporal-heavy sweep end-to-end at each worker count.

    Smoke runs (``--benchmark-disable``) execute one small-grid pass to prove
    the path works; the full grid exists to be *timed*, not to heat an
    unparallel CI box.
    """
    smoke = request.config.getoption("--benchmark-disable")
    grid = SMALL_GRID if smoke else GRID
    benchmark.extra_info["backend"] = BACKEND
    benchmark.extra_info["jobs"] = jobs
    reports = benchmark.pedantic(
        run_sweep, args=(jobs,), kwargs={"grid": grid}, rounds=2, iterations=1
    )
    assert len(reports) == (4 if smoke else len(GRID["horizon"]))
    benchmark.extra_info["worlds"] = sum(report.universe for report in reports)


def test_parallel_speedup_four_workers(request):
    """The acceptance claim: >= 2x end-to-end, jobs=4 vs jobs=1.

    Wall-clock parallel speedup needs parallel hardware: the assertion is
    skipped when fewer than four CPUs are usable (single-core CI) and in
    ``--benchmark-disable`` smoke runs.  The equivalence of the two paths is
    asserted by ``test_parallel_matches_serial_rows`` above unconditionally.
    """
    if request.config.getoption("--benchmark-disable"):
        pytest.skip("timing assertion runs only when benchmarks are enabled")
    cpus = _usable_cpus()
    if cpus < JOBS:
        pytest.skip(
            f"parallel speedup needs >= {JOBS} usable CPUs, found {cpus}; "
            "the differential checks still ran"
        )
    serial_time = _best_of(lambda: run_sweep(jobs=1))
    parallel_time = _best_of(lambda: run_sweep(jobs=JOBS))
    assert parallel_time * SPEEDUP_FLOOR <= serial_time, (
        f"jobs={JOBS} sweep ({parallel_time * 1e3:.0f} ms) should be at least "
        f"{SPEEDUP_FLOOR}x faster than jobs=1 ({serial_time * 1e3:.0f} ms) "
        f"on {cpus} CPUs"
    )
