"""E1 / E12 — the muddy children puzzle and announcement dynamics (Sections 2, 10)."""

import pytest

from repro.kripke.announcement import public_announce
from repro.kripke.checker import ModelChecker
from repro.logic.syntax import C
from repro.scenarios.muddy_children import MuddyChildren, run_muddy_children


@pytest.mark.parametrize("n,k", [(4, 2), (6, 3), (8, 4)])
def test_muddy_children_rounds(benchmark, n, k):
    """Muddy children answer "yes" in exactly round k (scaling n)."""
    result = benchmark(run_muddy_children, n, k)
    assert result.first_yes_round == k
    assert result.muddy_children_answered_yes


@pytest.mark.parametrize("n", [4, 6, 8])
def test_e_level_before_announcement(benchmark, n):
    """Before the father speaks, E^{k-1} m holds but E^k m does not (k = n//2)."""
    k = n // 2
    puzzle = MuddyChildren(n, muddy=list(range(k)))
    level = benchmark(puzzle.e_level_of_m)
    assert level == k - 1


@pytest.mark.parametrize("n", [4, 6, 8])
def test_announcement_creates_common_knowledge(benchmark, n):
    """E12: the father's public announcement makes m common knowledge."""
    puzzle = MuddyChildren(n, muddy=list(range(2)))

    def publish():
        announced = public_announce(puzzle.model, puzzle.at_least_one_muddy)
        return ModelChecker(announced).holds(
            C(puzzle.children, puzzle.at_least_one_muddy), puzzle.actual_world
        )

    assert benchmark(publish)
